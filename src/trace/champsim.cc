#include "trace/champsim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "util/log.h"

namespace fdip
{

namespace
{

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};

using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

bool
regIn(const std::uint8_t *regs, std::size_t n, std::uint8_t reg)
{
    for (std::size_t i = 0; i < n; ++i)
        if (regs[i] == reg)
            return true;
    return false;
}

bool
readsOther(const ChampSimRecord &r)
{
    for (std::uint8_t reg : r.sourceRegisters) {
        if (reg != 0 && reg != kChampSimRegStackPointer &&
            reg != kChampSimRegFlags &&
            reg != kChampSimRegInstructionPointer) {
            return true;
        }
    }
    return false;
}

} // namespace

ChampSimBranch
classifyChampSimBranch(const ChampSimRecord &rec)
{
    if (!rec.isBranch)
        return ChampSimBranch::kNotBranch;

    const bool writes_ip =
        regIn(rec.destRegisters, 2, kChampSimRegInstructionPointer);
    const bool writes_sp =
        regIn(rec.destRegisters, 2, kChampSimRegStackPointer);
    const bool reads_ip =
        regIn(rec.sourceRegisters, 4, kChampSimRegInstructionPointer);
    const bool reads_sp =
        regIn(rec.sourceRegisters, 4, kChampSimRegStackPointer);
    const bool reads_flags =
        regIn(rec.sourceRegisters, 4, kChampSimRegFlags);
    const bool reads_other = readsOther(rec);

    // ChampSim's decoding rules (tracer/ChampSim main.cc).
    if (writes_ip && reads_ip && reads_sp && writes_sp)
        return reads_other ? ChampSimBranch::kIndirectCall
                           : ChampSimBranch::kDirectCall;
    if (writes_ip && reads_sp && !reads_ip)
        return ChampSimBranch::kReturn;
    if (writes_ip && reads_flags)
        return ChampSimBranch::kConditional;
    if (writes_ip && reads_other)
        return ChampSimBranch::kIndirectJump;
    if (writes_ip)
        return ChampSimBranch::kDirectJump;
    return ChampSimBranch::kNotBranch;
}

InstClass
toInstClass(ChampSimBranch b, bool is_load, bool is_store)
{
    switch (b) {
      case ChampSimBranch::kConditional: return InstClass::kCondDirect;
      case ChampSimBranch::kDirectJump: return InstClass::kJumpDirect;
      case ChampSimBranch::kIndirectJump:
        return InstClass::kJumpIndirect;
      case ChampSimBranch::kDirectCall: return InstClass::kCallDirect;
      case ChampSimBranch::kIndirectCall:
        return InstClass::kCallIndirect;
      case ChampSimBranch::kReturn: return InstClass::kReturn;
      case ChampSimBranch::kNotBranch:
        break;
    }
    if (is_load)
        return InstClass::kLoad;
    if (is_store)
        return InstClass::kStore;
    return InstClass::kAlu;
}

bool
writeChampSimTrace(const std::string &path, const Trace &trace)
{
    FileHandle f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const DynInst &d = trace.insts[i];
        const StaticInst &s = trace.staticOf(i);
        ChampSimRecord rec;
        rec.ip = trace.pcOf(i);

        switch (s.cls) {
          case InstClass::kAlu:
            break;
          case InstClass::kLoad:
            rec.sourceMemory[0] = d.info;
            rec.sourceRegisters[0] = 3;
            rec.destRegisters[0] = 3;
            break;
          case InstClass::kStore:
            rec.destinationMemory[0] = d.info;
            rec.sourceRegisters[0] = 3;
            break;
          case InstClass::kCondDirect:
            rec.isBranch = 1;
            rec.branchTaken = d.taken;
            rec.sourceRegisters[0] = kChampSimRegFlags;
            rec.destRegisters[0] = kChampSimRegInstructionPointer;
            break;
          case InstClass::kJumpDirect:
            rec.isBranch = 1;
            rec.branchTaken = 1;
            rec.destRegisters[0] = kChampSimRegInstructionPointer;
            break;
          case InstClass::kJumpIndirect:
            rec.isBranch = 1;
            rec.branchTaken = 1;
            rec.sourceRegisters[0] = 3;
            rec.destRegisters[0] = kChampSimRegInstructionPointer;
            break;
          case InstClass::kCallDirect:
            rec.isBranch = 1;
            rec.branchTaken = 1;
            rec.sourceRegisters[0] = kChampSimRegInstructionPointer;
            rec.sourceRegisters[1] = kChampSimRegStackPointer;
            rec.destRegisters[0] = kChampSimRegInstructionPointer;
            rec.destRegisters[1] = kChampSimRegStackPointer;
            break;
          case InstClass::kCallIndirect:
            rec.isBranch = 1;
            rec.branchTaken = 1;
            rec.sourceRegisters[0] = kChampSimRegInstructionPointer;
            rec.sourceRegisters[1] = kChampSimRegStackPointer;
            rec.sourceRegisters[2] = 3;
            rec.destRegisters[0] = kChampSimRegInstructionPointer;
            rec.destRegisters[1] = kChampSimRegStackPointer;
            break;
          case InstClass::kReturn:
            rec.isBranch = 1;
            rec.branchTaken = 1;
            rec.sourceRegisters[0] = kChampSimRegStackPointer;
            rec.destRegisters[0] = kChampSimRegInstructionPointer;
            rec.destRegisters[1] = kChampSimRegStackPointer;
            break;
        }

        if (std::fwrite(&rec, sizeof(rec), 1, f.get()) != 1)
            return false;
    }
    return true;
}

bool
readChampSimTrace(const std::string &path, std::size_t max_insts,
                  Trace &out)
{
    FileHandle f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;

    // ---- Pass 1: slurp the records.
    std::vector<ChampSimRecord> recs;
    ChampSimRecord rec;
    while ((max_insts == 0 || recs.size() < max_insts) &&
           std::fread(&rec, sizeof(rec), 1, f.get()) == 1) {
        recs.push_back(rec);
    }
    if (recs.empty())
        return false;

    // ---- Pass 2: renormalize the sparse 64-bit IPs onto a contiguous
    // 4-byte-instruction image. Observed sequential-flow pairs (a
    // non-taken record followed by its fall-through) must land on
    // adjacent slots regardless of the x86 instruction length, so the
    // stream decomposes into *fall-through chains* that get contiguous
    // indices; between chains, padding proportional to the address gap
    // (clamped) preserves spatial grouping for the caches.
    std::vector<std::uint64_t> ips;
    ips.reserve(recs.size());
    for (const auto &r : recs)
        ips.push_back(r.ip);
    std::sort(ips.begin(), ips.end());
    ips.erase(std::unique(ips.begin(), ips.end()), ips.end());

    // Observed fall-through successor per ip (first observation wins).
    std::unordered_map<std::uint64_t, std::uint64_t> fallthrough;
    fallthrough.reserve(ips.size());
    for (std::size_t i = 0; i + 1 < recs.size(); ++i) {
        const bool sequential = recs[i].branchTaken == 0;
        if (!sequential)
            continue;
        const std::uint64_t a = recs[i].ip;
        const std::uint64_t b = recs[i + 1].ip;
        if (b <= a)
            continue; // Self-loop or overlap: not a fall-through.
        fallthrough.emplace(a, b);
    }

    std::unordered_map<std::uint64_t, std::uint32_t> index_of;
    index_of.reserve(ips.size());
    {
        std::uint32_t cursor = 0;
        std::uint64_t prev_ip = 0;
        bool first = true;
        for (std::uint64_t ip : ips) {
            if (index_of.count(ip))
                continue; // Already placed by an earlier chain walk
                          // (fall-through targets sort after their
                          // predecessors, so chains fill in order).
            // Inter-chain padding from the raw address gap.
            if (!first) {
                const std::uint64_t gap =
                    ip > prev_ip ? ip - prev_ip : 4;
                cursor += static_cast<std::uint32_t>(
                    std::clamp<std::uint64_t>(gap / 16, 0, 15));
            }
            first = false;
            // Walk the fall-through chain from this head.
            std::uint64_t cur = ip;
            while (index_of.emplace(cur, cursor).second) {
                ++cursor;
                const auto it = fallthrough.find(cur);
                if (it == fallthrough.end() ||
                    index_of.count(it->second)) {
                    break;
                }
                cur = it->second;
            }
            prev_ip = ip;
        }
    }
    const std::uint32_t image_slots = [&] {
        std::uint32_t max_idx = 0;
        for (const auto &kv : index_of)
            max_idx = std::max(max_idx, kv.second);
        return max_idx + 1;
    }();

    auto workload = std::make_shared<Workload>();
    workload->spec.name = "champsim-import";
    workload->dispatchCallIndex = 0xffffffffu;
    ProgramImage &img = workload->image;

    // ---- Pass 3: build the static image from the first dynamic
    // instance seen at each ip (plus taken-target discovery). Slots
    // not covered by any ip stay as non-branch filler.
    std::vector<bool> emitted(image_slots, false);
    for (std::uint32_t i = 0; i < image_slots; ++i)
        img.append(StaticInst{});
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const ChampSimRecord &r = recs[i];
        const std::uint32_t idx = index_of[r.ip];
        StaticInst &s = img.instMutable(idx);
        const bool is_load = r.sourceMemory[0] != 0;
        const bool is_store = r.destinationMemory[0] != 0;
        if (!emitted[idx]) {
            emitted[idx] = true;
            s.cls = toInstClass(classifyChampSimBranch(r), is_load,
                                is_store);
            s.target = kNoAddr;
        }
        // Discover the direct-branch target from a taken instance.
        if (isBranch(s.cls) && isDirect(s.cls) && s.target == kNoAddr &&
            r.branchTaken && i + 1 < recs.size()) {
            const auto it = index_of.find(recs[i + 1].ip);
            if (it != index_of.end())
                s.target = img.pcOf(it->second);
        }
    }

    workload->entryPc = img.pcOf(index_of[recs.front().ip]);

    // ---- Pass 4: emit the dynamic stream, patching any record whose
    // renormalized fall-through breaks adjacency (x86 paths our fixed-
    // width image cannot express) into an explicit taken transfer.
    out = Trace{};
    out.workload = workload;
    out.insts.reserve(recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const ChampSimRecord &r = recs[i];
        const std::uint32_t idx = index_of[r.ip];
        DynInst d;
        d.staticIndex = idx;

        const bool have_next = i + 1 < recs.size();
        const std::uint32_t next_idx =
            have_next ? index_of[recs[i + 1].ip] : idx + 1;
        const bool adjacent = !have_next || next_idx == idx + 1;

        if (!isBranch(img.inst(idx).cls) && !adjacent) {
            // Sequential flow that is not adjacent after renormalizing
            // (an x86 path this fixed-width image cannot express):
            // re-class the slot as an indirect jump so the replayed
            // control flow stays connected. Earlier dynamic instances
            // of this slot keep taken=0 and remain consistent.
            img.instMutable(idx).cls = InstClass::kJumpIndirect;
        }
        const StaticInst &s = img.inst(idx);

        if (isBranch(s.cls)) {
            d.taken = r.branchTaken;
            if (!adjacent)
                d.taken = 1; // Fall-through impossible: must transfer.
            if (d.taken) {
                d.info = img.pcOf(next_idx);
            } else {
                d.info = s.target;
            }
        } else if (s.cls == InstClass::kLoad) {
            d.info = r.sourceMemory[0];
        } else if (s.cls == InstClass::kStore) {
            d.info = r.destinationMemory[0];
        }

        out.insts.push_back(d);
    }
    return true;
}

} // namespace fdip
