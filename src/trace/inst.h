/**
 * @file
 * Static and dynamic instruction models.
 *
 * The paper assumes fixed-length 32-bit instructions; we do the same. A
 * StaticInst is one slot in the program image (what an I-cache line
 * holds and what the pre-decoder sees); a DynInst is one executed
 * instance in the trace.
 */

#ifndef FDIP_TRACE_INST_H_
#define FDIP_TRACE_INST_H_

#include <cstdint>

#include "util/hotpath.h"
#include "util/types.h"

namespace fdip
{

/**
 * Instruction classes relevant to the frontend.
 *
 * "Direct" branches embed a PC-relative offset in the encoding, so the
 * pre-decoder can recover their target (PFC-able). "Indirect" branches
 * read the target from a register (not PFC-able). Returns obtain the
 * target from the RAS (PFC-able).
 */
enum class InstClass : std::uint8_t
{
    kAlu,          ///< Non-branch, non-memory instruction.
    kLoad,         ///< Memory load.
    kStore,        ///< Memory store.
    kCondDirect,   ///< Conditional PC-relative branch.
    kJumpDirect,   ///< Unconditional PC-relative jump.
    kCallDirect,   ///< Unconditional PC-relative call (pushes RAS).
    kJumpIndirect, ///< Unconditional register-indirect jump.
    kCallIndirect, ///< Unconditional register-indirect call (pushes RAS).
    kReturn,       ///< Function return (target from RAS).
};

/** True for any control-flow instruction. */
FDIP_HOT_PATH constexpr bool
isBranch(InstClass c)
{
    return c >= InstClass::kCondDirect;
}

/** True for conditional branches. */
FDIP_HOT_PATH constexpr bool
isConditional(InstClass c)
{
    return c == InstClass::kCondDirect;
}

/** True for unconditional control flow. */
FDIP_HOT_PATH constexpr bool
isUnconditional(InstClass c)
{
    return isBranch(c) && !isConditional(c);
}

/** True when the target is recoverable from the encoding (PC-relative). */
FDIP_HOT_PATH constexpr bool
isDirect(InstClass c)
{
    return c == InstClass::kCondDirect || c == InstClass::kJumpDirect ||
           c == InstClass::kCallDirect;
}

/** True for register-indirect control flow. */
FDIP_HOT_PATH constexpr bool
isIndirect(InstClass c)
{
    return c == InstClass::kJumpIndirect || c == InstClass::kCallIndirect;
}

/** True for calls (push a return address onto the RAS). */
FDIP_HOT_PATH constexpr bool
isCall(InstClass c)
{
    return c == InstClass::kCallDirect || c == InstClass::kCallIndirect;
}

/** True for returns (pop the RAS). */
FDIP_HOT_PATH constexpr bool
isReturn(InstClass c)
{
    return c == InstClass::kReturn;
}

/** Short mnemonic for debugging output. */
const char *instClassName(InstClass c);

/**
 * How the workload generator decides a conditional branch's outcome or
 * an indirect branch's target at execution time. This is generator-side
 * ground truth; the simulated predictors never see it.
 */
enum class BranchBehavior : std::uint8_t
{
    kNone,           ///< Not a conditional/indirect branch.
    kBiased,         ///< Taken with fixed per-branch probability.
    kLoop,           ///< Taken (n-1) times, then not-taken, repeating.
    kPathCorrelated, ///< Outcome is a hash of recent taken-branch path.
    kDirCorrelated,  ///< Outcome is a hash of recent all-branch directions.
};

/**
 * One slot of the program image.
 */
struct StaticInst
{
    /** Instruction class. */
    InstClass cls = InstClass::kAlu;

    /** Ground-truth behaviour model (generator-side only). */
    BranchBehavior behavior = BranchBehavior::kNone;

    /** Behaviour parameter: permille bias, loop count, or history depth. */
    std::uint16_t param = 0;

    /** Direct target address; kNoAddr for non-branches and indirects. */
    Addr target = kNoAddr;
};

/**
 * One dynamic (executed) instruction in a trace.
 *
 * Ground truth for the simulator: actual branch direction and target,
 * or the effective address of a memory access.
 */
struct DynInst
{
    /** Index of the static instruction in the program image. */
    std::uint32_t staticIndex = 0;

    /** Actual direction for conditional branches; 1 for taken
     *  unconditional flow; 0 otherwise. */
    std::uint8_t taken = 0;

    /** Padding kept explicit so the trace record layout is stable. */
    std::uint8_t pad[3] = {0, 0, 0};

    /** Actual branch target (branches) or effective address (memory). */
    Addr info = kNoAddr;
};

static_assert(sizeof(DynInst) == 16, "trace record layout must be stable");

} // namespace fdip

#endif // FDIP_TRACE_INST_H_
