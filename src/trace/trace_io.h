/**
 * @file
 * Binary serialization of dynamic traces, so expensive traces can be
 * generated once and replayed (see examples/trace_inspect).
 */

#ifndef FDIP_TRACE_TRACE_IO_H_
#define FDIP_TRACE_TRACE_IO_H_

#include <string>
#include <vector>

#include "trace/inst.h"

namespace fdip
{

/** Writes @p insts to @p path. Returns false on I/O failure. */
bool writeTraceFile(const std::string &path,
                    const std::vector<DynInst> &insts);

/** Reads a trace written by writeTraceFile. Returns false on failure
 *  or format mismatch. */
bool readTraceFile(const std::string &path, std::vector<DynInst> &insts);

} // namespace fdip

#endif // FDIP_TRACE_TRACE_IO_H_
