#include "trace/workload.h"

#include <algorithm>

#include "util/bits.h"
#include "util/log.h"
#include "util/rng.h"

namespace fdip
{

namespace
{

/**
 * Lays out one function.
 *
 * Functions are built from *segments* so that the executed call tree
 * stays bounded: each segment ends in a path-correlated "early exit"
 * branch to the epilogue, so a visit typically executes only the first
 * couple of segments. Call sites sit at segment ends, outside loop
 * bodies, which keeps executed-calls-per-visit near one and the dynamic
 * call tree from exploding despite the acyclic static call graph.
 *
 * Layout:
 *   prologue  (~10 insts, straight line)
 *   segment*  (body with loops/branches/jumps, optional call, early exit)
 *   epilogue  (straight line + return)
 */
class FunctionBuilder
{
  public:
    FunctionBuilder(const WorkloadSpec &spec, ProgramImage &image, Rng &rng)
        : spec_(spec), image_(image), rng_(rng)
    {
    }

    /**
     * Emits a function of exactly @p size instructions. Direct call
     * sites target entries from @p callees; indirect call sites are
     * appended to @p indirect_sites. Returns the entry index.
     */
    std::uint32_t
    emit(unsigned size, const std::vector<Addr> &callees,
         std::vector<std::uint32_t> &indirect_sites)
    {
        const auto first = static_cast<std::uint32_t>(image_.numInsts());
        const unsigned total = std::max(24u, size);
        const unsigned epilogue_len = 4;
        const unsigned prologue_len =
            static_cast<unsigned>(rng_.range(6, 12));
        const unsigned body_len = total - prologue_len - epilogue_len;
        const std::uint32_t epilogue_first = first + prologue_len + body_len;

        for (unsigned i = 0; i < prologue_len; ++i)
            emitStraightLine();

        // Split the body into segments.
        unsigned remaining = body_len;
        while (remaining > 0) {
            unsigned seg = static_cast<unsigned>(rng_.range(
                spec_.minSegmentInsts, spec_.maxSegmentInsts));
            if (seg + spec_.minSegmentInsts > remaining)
                seg = remaining; // Last segment absorbs the tail.
            emitSegment(seg, epilogue_first, remaining > seg, callees,
                        indirect_sites);
            remaining -= seg;
        }

        // Epilogue: straight line then return.
        for (unsigned i = 0; i + 1 < epilogue_len; ++i)
            emitStraightLine();
        StaticInst ret;
        ret.cls = InstClass::kReturn;
        image_.append(ret);

        image_.addFunction(first, total);
        return first;
    }

  private:
    /** Emits a load/store/alu according to the memory mix. */
    void
    emitStraightLine()
    {
        StaticInst inst;
        const unsigned roll = static_cast<unsigned>(rng_.below(1000));
        if (roll < spec_.loadPermille) {
            inst.cls = InstClass::kLoad;
        } else if (roll < spec_.loadPermille + spec_.storePermille) {
            inst.cls = InstClass::kStore;
        } else {
            inst.cls = InstClass::kAlu;
        }
        image_.append(inst);
    }

    /**
     * Emits one segment of exactly @p len instructions. When
     * @p has_exit, the last instruction is the early-exit branch and
     * (possibly) the one before it a call site; otherwise the segment
     * falls through toward the epilogue.
     */
    void
    emitSegment(unsigned len, std::uint32_t epilogue_first, bool has_exit,
                const std::vector<Addr> &callees,
                std::vector<std::uint32_t> &indirect_sites)
    {
        unsigned tail = 0;
        const bool want_call =
            !callees.empty() &&
            rng_.below(1000) < spec_.callPerSegmentPermille;
        if (has_exit)
            ++tail;
        if (want_call && len >= 8 + tail)
            ++tail;

        const unsigned body = len - tail;
        emitSegmentBody(body);

        if (want_call && tail >= (has_exit ? 2u : 1u)) {
            StaticInst call;
            if (rng_.below(1000) < spec_.indirectCallPermille) {
                call.cls = InstClass::kCallIndirect;
                indirect_sites.push_back(
                    static_cast<std::uint32_t>(image_.numInsts()));
            } else {
                call.cls = InstClass::kCallDirect;
                call.target = callees[rng_.below(callees.size())];
            }
            image_.append(call);
        }

        if (has_exit) {
            StaticInst exit;
            exit.cls = InstClass::kCondDirect;
            exit.behavior = BranchBehavior::kPathCorrelated;
            exit.param = static_cast<std::uint16_t>(rng_.range(
                spec_.minCorrelationDepth, spec_.maxCorrelationDepth));
            exit.target = image_.pcOf(epilogue_first);
            image_.append(exit);
        }
    }

    /**
     * Emits @p len instructions of loop-and-branch-laden segment body.
     * All control flow stays inside the body region.
     */
    void
    emitSegmentBody(unsigned len)
    {
        const auto body_first =
            static_cast<std::uint32_t>(image_.numInsts());
        bool loop_done = false;
        for (unsigned i = 0; i < len; ++i) {
            const unsigned pos =
                static_cast<std::uint32_t>(image_.numInsts()) - body_first;
            const unsigned remaining = len - i - 1;
            const unsigned roll = static_cast<unsigned>(rng_.below(1000));

            if (roll < spec_.condBranchPermille) {
                if (!loop_done && pos >= 6 &&
                    rng_.below(1000) < spec_.loopPermille) {
                    emitLoopBranch(pos);
                    loop_done = true;
                } else if (remaining >= 2) {
                    emitForwardConditional(remaining);
                } else {
                    emitStraightLine();
                }
            } else if (roll <
                           spec_.condBranchPermille + spec_.jumpPermille &&
                       remaining >= 3) {
                StaticInst jump;
                jump.cls = InstClass::kJumpDirect;
                const unsigned skip = static_cast<unsigned>(
                    rng_.range(2, std::min(remaining, 12u)));
                jump.target = image_.pcOf(
                    static_cast<std::uint32_t>(image_.numInsts()) + 1 +
                    skip);
                image_.append(jump);
            } else {
                emitStraightLine();
            }
        }
    }

    /** Emits a backward loop branch over the last <= 16 instructions. */
    void
    emitLoopBranch(unsigned pos)
    {
        StaticInst inst;
        inst.cls = InstClass::kCondDirect;
        inst.behavior = BranchBehavior::kLoop;
        inst.param = static_cast<std::uint16_t>(
            rng_.range(spec_.minLoopCount, spec_.maxLoopCount));
        const unsigned back =
            static_cast<unsigned>(rng_.range(4, std::min(pos, 16u)));
        inst.target = image_.pcOf(
            static_cast<std::uint32_t>(image_.numInsts()) - back);
        image_.append(inst);
    }

    /** Emits a forward conditional with the configured behaviour mix. */
    void
    emitForwardConditional(unsigned remaining)
    {
        StaticInst inst;
        inst.cls = InstClass::kCondDirect;
        const unsigned skip = static_cast<unsigned>(
            rng_.range(2, std::min(remaining, 16u)));
        inst.target = image_.pcOf(
            static_cast<std::uint32_t>(image_.numInsts()) + 1 + skip);

        const unsigned r = static_cast<unsigned>(rng_.below(1000));
        if (r < spec_.neverTakenPermille) {
            inst.behavior = BranchBehavior::kBiased;
            inst.param = 2; // Exception-check style: almost never taken.
        } else if (r < spec_.neverTakenPermille +
                           spec_.pathCorrelatedPermille) {
            inst.behavior = BranchBehavior::kPathCorrelated;
            inst.param = static_cast<std::uint16_t>(rng_.range(
                spec_.minCorrelationDepth, spec_.maxCorrelationDepth));
        } else if (r < spec_.neverTakenPermille +
                           spec_.pathCorrelatedPermille +
                           spec_.dirCorrelatedPermille) {
            inst.behavior = BranchBehavior::kDirCorrelated;
            inst.param = static_cast<std::uint16_t>(rng_.range(
                spec_.minCorrelationDepth, spec_.maxCorrelationDepth));
        } else {
            inst.behavior = BranchBehavior::kBiased;
            // Mostly strongly biased, a few noisy ones for realism.
            static constexpr std::uint16_t kBiases[] = {
                950, 930, 975, 985, 60, 35, 110, 870, 905, 700,
            };
            inst.param = kBiases[rng_.below(std::size(kBiases))];
        }
        image_.append(inst);
    }

    const WorkloadSpec &spec_;
    ProgramImage &image_;
    Rng &rng_;
};

} // namespace

Workload
buildWorkload(const WorkloadSpec &spec)
{
    if (spec.numFunctions < spec.numRootFunctions + 2)
        fdip_fatal("workload '%s': too few functions", spec.name.c_str());

    Workload wl;
    wl.spec = spec;
    Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0x1234);

    // ---- Pass 1: decide function sizes and entry addresses up front so
    // call targets can point forward in the image.
    const unsigned n = spec.numFunctions;
    std::vector<unsigned> sizes(n);
    std::vector<std::uint32_t> entries(n);
    std::uint32_t cursor = 8; // Dispatcher occupies the first 8 slots.
    for (unsigned f = 0; f < n; ++f) {
        sizes[f] = std::max(
            24u, static_cast<unsigned>(
                     rng.range(spec.minFuncInsts, spec.maxFuncInsts)));
        entries[f] = cursor;
        cursor += sizes[f];
    }

    // ---- Pass 2: acyclic call graph (function f calls only functions
    // with larger index), so recursion never occurs and dynamic call
    // depth is bounded by chain depth in the DAG.
    std::vector<std::vector<Addr>> callees(n);
    for (unsigned f = 0; f + 1 < n; ++f) {
        const unsigned num = 1 + static_cast<unsigned>(
            rng.below(spec.maxCalleesPerFunction));
        for (unsigned c = 0; c < num; ++c) {
            const unsigned callee =
                static_cast<unsigned>(rng.range(f + 1, n - 1));
            callees[f].push_back(wl.image.pcOf(entries[callee]));
        }
    }

    // ---- Pass 3: emit the dispatcher ("main"):
    //   0: alu   1: load   2: blr <root>   3: alu   4: store
    //   5: b 0   6,7: alu padding
    {
        StaticInst alu;
        alu.cls = InstClass::kAlu;
        StaticInst load;
        load.cls = InstClass::kLoad;
        StaticInst store;
        store.cls = InstClass::kStore;
        StaticInst call;
        call.cls = InstClass::kCallIndirect;
        StaticInst jump;
        jump.cls = InstClass::kJumpDirect;
        jump.target = wl.image.pcOf(0);

        wl.image.append(alu);                         // 0
        wl.image.append(load);                        // 1
        wl.dispatchCallIndex = wl.image.append(call); // 2
        wl.image.append(alu);                         // 3
        wl.image.append(store);                       // 4
        wl.image.append(jump);                        // 5
        wl.image.append(alu);                         // 6
        wl.image.append(alu);                         // 7
        wl.image.addFunction(0, 8);
    }
    wl.entryPc = wl.image.pcOf(0);

    // ---- Pass 4: emit every function body.
    FunctionBuilder fb(spec, wl.image, rng);
    std::vector<std::uint32_t> indirect_sites;
    for (unsigned f = 0; f < n; ++f) {
        const std::uint32_t first =
            fb.emit(sizes[f], callees[f], indirect_sites);
        if (first != entries[f]) {
            fdip_panic("function %u entry mismatch: planned %u, got %u", f,
                       entries[f], first);
        }
    }

    // ---- Pass 5: assign indirect-call target sets: function entries
    // with a larger index than the caller (preserves acyclicity).
    for (std::uint32_t site : indirect_sites) {
        const Addr site_pc = wl.image.pcOf(site);
        // First function entirely after the call site.
        unsigned lo = n - 1;
        for (unsigned f = 0; f < n; ++f) {
            if (wl.image.pcOf(entries[f]) > site_pc) {
                lo = f;
                break;
            }
        }
        const unsigned count = static_cast<unsigned>(rng.range(
            spec.indirectTargetsMin, spec.indirectTargetsMax));
        std::vector<Addr> targets;
        for (unsigned t = 0; t < count; ++t) {
            const unsigned callee =
                static_cast<unsigned>(rng.range(lo, n - 1));
            targets.push_back(wl.image.pcOf(entries[callee]));
        }
        wl.indirectTargets.emplace(site, std::move(targets));
    }

    // ---- Pass 6: dispatcher schedule. Each phase repeats a fixed
    // rotation of root entries; the root set shifts between phases to
    // model working-set drift.
    wl.rootSchedule.resize(std::max(1u, spec.numPhases));
    for (unsigned p = 0; p < wl.rootSchedule.size(); ++p) {
        std::vector<Addr> rotation;
        for (unsigned r = 0; r < spec.rootRotationLength; ++r) {
            const unsigned root = static_cast<unsigned>(
                rng.below(spec.numRootFunctions));
            const unsigned shifted =
                (root + p * (spec.numRootFunctions / 3 + 1)) %
                spec.numRootFunctions;
            rotation.push_back(wl.image.pcOf(entries[shifted]));
        }
        wl.rootSchedule[p] = std::move(rotation);
    }
    // Record the union of scheduled roots as the dispatcher's targets.
    {
        std::vector<Addr> all;
        for (const auto &phase : wl.rootSchedule)
            for (Addr a : phase)
                all.push_back(a);
        std::sort(all.begin(), all.end());
        all.erase(std::unique(all.begin(), all.end()), all.end());
        wl.indirectTargets[wl.dispatchCallIndex] = std::move(all);
    }

    return wl;
}

WorkloadSpec
serverSpec(const std::string &name, std::uint64_t seed)
{
    WorkloadSpec s;
    s.name = name;
    s.seed = seed;
    s.numFunctions = 460;
    s.minFuncInsts = 150;
    s.maxFuncInsts = 900;
    s.condBranchPermille = 150;
    s.indirectCallPermille = 140;
    s.numRootFunctions = 40;
    s.rootRotationLength = 16;
    s.numPhases = 3;
    return s;
}

WorkloadSpec
clientSpec(const std::string &name, std::uint64_t seed)
{
    WorkloadSpec s;
    s.name = name;
    s.seed = seed;
    s.numFunctions = 260;
    s.minFuncInsts = 120;
    s.maxFuncInsts = 700;
    s.condBranchPermille = 140;
    s.indirectCallPermille = 100;
    s.numRootFunctions = 20;
    s.rootRotationLength = 10;
    s.numPhases = 2;
    return s;
}

WorkloadSpec
specCpuSpec(const std::string &name, std::uint64_t seed)
{
    WorkloadSpec s;
    s.name = name;
    s.seed = seed;
    s.numFunctions = 150;
    s.minFuncInsts = 100;
    s.maxFuncInsts = 600;
    s.condBranchPermille = 160;
    s.loopPermille = 480;   // Loop-dominated.
    s.maxLoopCount = 60;
    s.indirectCallPermille = 60;
    s.numRootFunctions = 24;
    s.rootRotationLength = 12;
    s.numPhases = 2;
    return s;
}

} // namespace fdip
