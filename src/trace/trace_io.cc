#include "trace/trace_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>

namespace fdip
{

namespace
{

constexpr std::uint64_t kMagic = 0x46444950'54524331ULL; // "FDIPTRC1"

struct FileHeader
{
    std::uint64_t magic;
    std::uint64_t count;
};

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};

using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool
writeTraceFile(const std::string &path, const std::vector<DynInst> &insts)
{
    FileHandle f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    FileHeader h{kMagic, insts.size()};
    if (std::fwrite(&h, sizeof(h), 1, f.get()) != 1)
        return false;
    if (!insts.empty() &&
        std::fwrite(insts.data(), sizeof(DynInst), insts.size(), f.get()) !=
            insts.size()) {
        return false;
    }
    return true;
}

bool
readTraceFile(const std::string &path, std::vector<DynInst> &insts)
{
    FileHandle f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    FileHeader h{};
    if (std::fread(&h, sizeof(h), 1, f.get()) != 1 || h.magic != kMagic)
        return false;
    insts.resize(h.count);
    if (h.count != 0 &&
        std::fread(insts.data(), sizeof(DynInst), h.count, f.get()) !=
            h.count) {
        return false;
    }
    return true;
}

} // namespace fdip
