#include "trace/suite.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/log.h"

namespace fdip
{

std::vector<SuiteEntry>
buildStandardSuite(std::size_t insts_per_trace, bool small)
{
    std::vector<WorkloadSpec> specs;
    specs.push_back(serverSpec("srv-a", 101));
    specs.push_back(clientSpec("clt-a", 201));
    specs.push_back(specCpuSpec("spec-a", 301));
    if (!small) {
        specs.push_back(serverSpec("srv-b", 102));
        specs.push_back(serverSpec("srv-c", 103));
        specs.push_back(clientSpec("clt-b", 202));
        specs.push_back(clientSpec("clt-c", 203));
        specs.push_back(specCpuSpec("spec-b", 302));
        specs.push_back(specCpuSpec("spec-c", 303));
    }

    std::vector<SuiteEntry> suite;
    suite.reserve(specs.size());
    for (const auto &spec : specs) {
        auto wl = std::make_shared<Workload>(buildWorkload(spec));
        SuiteEntry e;
        e.name = spec.name;
        e.trace = generateTrace(wl, insts_per_trace);
        suite.push_back(std::move(e));
    }
    return suite;
}

std::size_t
suiteInstsFromEnv(std::size_t default_insts)
{
    // Coordinating-thread opt-in, read while building the suite.
    const char *v = // NOLINT(concurrency-mt-unsafe)
        std::getenv("FDIP_SIM_INSTRS");
    if (v == nullptr || *v == '\0')
        return default_insts;
    char *end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (errno != 0 || end == v || *end != '\0' || *v == '-' || n <= 1000) {
        fdip_warn("FDIP_SIM_INSTRS='%s' is not a valid instruction count "
                  "(want a plain integer > 1000); using %zu",
                  v, default_insts);
        return default_insts;
    }
    return static_cast<std::size_t>(n);
}

bool
suiteSmallFromEnv()
{
    // Coordinating-thread opt-in, read while building the suite.
    const char *v = // NOLINT(concurrency-mt-unsafe)
        std::getenv("FDIP_SUITE");
    if (v == nullptr || *v == '\0')
        return false;
    if (std::strcmp(v, "small") == 0)
        return true;
    if (std::strcmp(v, "full") != 0)
        fdip_warn("FDIP_SUITE='%s' is not 'small' or 'full'; using full", v);
    return false;
}

} // namespace fdip
