#include "trace/program.h"

#include "util/hotpath.h"
#include "util/log.h"

namespace fdip
{

const char *
instClassName(InstClass c)
{
    switch (c) {
      case InstClass::kAlu: return "alu";
      case InstClass::kLoad: return "load";
      case InstClass::kStore: return "store";
      case InstClass::kCondDirect: return "b.cond";
      case InstClass::kJumpDirect: return "b";
      case InstClass::kCallDirect: return "bl";
      case InstClass::kJumpIndirect: return "br";
      case InstClass::kCallIndirect: return "blr";
      case InstClass::kReturn: return "ret";
    }
    return "?";
}

ProgramImage::ProgramImage(Addr base)
    : base_(base)
{
    if (base_ % kFetchBlockBytes != 0)
        fdip_fatal("program base %#lx must be 32B aligned", base_);
    filler_.cls = InstClass::kAlu;
}

FDIP_HOT_PATH const StaticInst &
ProgramImage::instAt(Addr pc) const
{
    if (!contains(pc))
        return filler_;
    return insts_[indexOf(pc)];
}

std::uint32_t
ProgramImage::append(const StaticInst &inst)
{
    insts_.push_back(inst);
    return static_cast<std::uint32_t>(insts_.size() - 1);
}

void
ProgramImage::addFunction(std::uint32_t first_index, std::uint32_t count)
{
    if (first_index + count > insts_.size())
        fdip_panic("function [%u, %u) exceeds image size %zu", first_index,
                   first_index + count, insts_.size());
    functions_.push_back({first_index, count});
}

std::size_t
ProgramImage::numBranches() const
{
    std::size_t n = 0;
    for (const auto &i : insts_)
        if (isBranch(i.cls))
            ++n;
    return n;
}

std::size_t
ProgramImage::numLikelyTakenBranches() const
{
    std::size_t n = 0;
    for (const auto &i : insts_) {
        if (!isBranch(i.cls))
            continue;
        if (isConditional(i.cls) && i.behavior == BranchBehavior::kBiased &&
            i.param < 50) {
            continue; // Almost-never-taken conditional.
        }
        ++n;
    }
    return n;
}

} // namespace fdip
