/**
 * @file
 * The standard workload suite used by the experiment harness, mirroring
 * the IPC-1 mix of server, client, and SPEC-like traces.
 */

#ifndef FDIP_TRACE_SUITE_H_
#define FDIP_TRACE_SUITE_H_

#include <memory>
#include <string>
#include <vector>

#include "trace/trace_gen.h"
#include "trace/workload.h"

namespace fdip
{

/**
 * A named, ready-to-simulate trace.
 */
struct SuiteEntry
{
    std::string name;
    Trace trace;
};

/**
 * Builds the standard suite.
 *
 * @param insts_per_trace dynamic instructions per trace.
 * @param small           when true, builds a reduced 3-workload suite
 *                        (one per class) for fast tests.
 */
std::vector<SuiteEntry> buildStandardSuite(std::size_t insts_per_trace,
                                           bool small = false);

/**
 * Reads suite sizing from the environment:
 * FDIP_SIM_INSTRS (default @p default_insts) and FDIP_SUITE
 * ("small"/"full", default full). Used by every bench binary so suite
 * cost can be scaled without rebuilding.
 */
std::size_t suiteInstsFromEnv(std::size_t default_insts);

/** True when FDIP_SUITE=small is set in the environment. */
bool suiteSmallFromEnv();

} // namespace fdip

#endif // FDIP_TRACE_SUITE_H_
