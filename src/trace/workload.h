/**
 * @file
 * Synthetic workload generation.
 *
 * The IPC-1 trace files the paper uses are not redistributable, so the
 * simulator ships a workload generator that synthesizes programs with
 * the properties the paper's study depends on: instruction footprints
 * much larger than the L1I, realistic basic-block sizes, biased and
 * history-correlated conditional branches, loops, deep call graphs, and
 * indirect dispatch. Each (spec, seed) pair deterministically produces
 * the same program and trace.
 */

#ifndef FDIP_TRACE_WORKLOAD_H_
#define FDIP_TRACE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/program.h"
#include "util/types.h"

namespace fdip
{

/**
 * Tunable knobs describing a workload family member.
 *
 * All "permille" fields are out of 1000.
 */
struct WorkloadSpec
{
    std::string name = "anon";
    std::uint64_t seed = 1;

    /// @{ Program shape.
    unsigned numFunctions = 200;
    unsigned minFuncInsts = 120;
    unsigned maxFuncInsts = 800;
    unsigned maxCalleesPerFunction = 6;
    /// @}

    /// @{ Instruction mix (per non-terminal slot).
    unsigned condBranchPermille = 140;  ///< Conditional branches.
    unsigned jumpPermille = 25;         ///< Unconditional direct jumps.
    unsigned loadPermille = 250;        ///< Loads.
    unsigned storePermille = 120;       ///< Stores.
    /// @}

    /** Probability (permille) that a segment ends in a call site. This,
     *  together with the ~50% early-exit rate per segment, bounds the
     *  executed-calls-per-visit near one so call trees stay tractable. */
    unsigned callPerSegmentPermille = 600;

    /// @{ Segment sizing (instructions per early-exit region).
    unsigned minSegmentInsts = 28;
    unsigned maxSegmentInsts = 44;
    /// @}

    /// @{ Conditional-branch behaviour mix (of conditional branches).
    unsigned loopPermille = 220;          ///< Backward loop branches.
    unsigned neverTakenPermille = 180;    ///< Exception-check style.
    unsigned pathCorrelatedPermille = 320; ///< Taken-path correlated.
    unsigned dirCorrelatedPermille = 80;  ///< Direction-history correlated.
    // The remainder are plain biased branches.
    /// @}

    /// @{ Behaviour parameters.
    unsigned minLoopCount = 3;
    unsigned maxLoopCount = 34;
    unsigned minCorrelationDepth = 2;
    unsigned maxCorrelationDepth = 10;
    /// @}

    /// @{ Indirect control flow.
    unsigned indirectCallPermille = 120; ///< Of call sites.
    unsigned indirectTargetsMin = 2;
    unsigned indirectTargetsMax = 6;
    /// @}

    /// @{ Top-level dispatch.
    unsigned numRootFunctions = 24;  ///< Hot entry points.
    unsigned rootRotationLength = 12; ///< Length of repeating root sequence.
    unsigned numPhases = 3;          ///< Root-set shifts over the trace.
    /// @}
};

/**
 * A generated workload: the program image plus generator-side metadata
 * the trace executor needs (indirect target sets, dispatch schedule).
 */
struct Workload
{
    WorkloadSpec spec;
    ProgramImage image;

    /** Per-indirect-branch candidate target addresses. */
    std::unordered_map<std::uint32_t, std::vector<Addr>> indirectTargets;

    /** Index of the dispatcher's indirect call instruction. */
    std::uint32_t dispatchCallIndex = 0;

    /** Address of the dispatcher loop entry (trace start PC). */
    Addr entryPc = 0;

    /** Root sequences, one per phase, cycled by the dispatcher. */
    std::vector<std::vector<Addr>> rootSchedule;
};

/** Builds the full program image and metadata for @p spec. */
Workload buildWorkload(const WorkloadSpec &spec);

/// @{ Workload family presets modelled on the paper's IPC-1 classes.
/** Server-like: multi-MB-scale footprint, deep calls, branchy. */
WorkloadSpec serverSpec(const std::string &name, std::uint64_t seed);
/** Client-like: medium footprint. */
WorkloadSpec clientSpec(const std::string &name, std::uint64_t seed);
/** SPEC-like: loop-dominated, smaller (but still > L1I) footprint. */
WorkloadSpec specCpuSpec(const std::string &name, std::uint64_t seed);
/// @}

} // namespace fdip

#endif // FDIP_TRACE_WORKLOAD_H_
