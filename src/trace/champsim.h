/**
 * @file
 * ChampSim trace-format interchange.
 *
 * The paper's evaluation substrate is ChampSim, whose input traces are
 * streams of fixed 64-byte records. This module implements that record
 * format so that
 *
 *  - fdipsim traces can be *exported* for use with ChampSim-based
 *    tools, and
 *  - externally produced ChampSim traces (e.g. the IPC-1 traces, where
 *    available) can be *imported* and replayed on this simulator.
 *
 * Import performs two documented adaptations: branch kinds are
 * classified from the architectural register sets exactly the way
 * ChampSim does it, and the sparse 64-bit instruction addresses are
 * renormalized onto this simulator's contiguous fixed-4-byte
 * instruction image (sorted-address order, preserving adjacency and
 * therefore cache-line locality up to quantization).
 */

#ifndef FDIP_TRACE_CHAMPSIM_H_
#define FDIP_TRACE_CHAMPSIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_gen.h"

namespace fdip
{

/**
 * One input record, bit-compatible with ChampSim's input_instr
 * (64 bytes).
 */
struct ChampSimRecord
{
    std::uint64_t ip = 0;

    std::uint8_t isBranch = 0;
    std::uint8_t branchTaken = 0;

    std::uint8_t destRegisters[2] = {0, 0};
    std::uint8_t sourceRegisters[4] = {0, 0, 0, 0};

    std::uint64_t destinationMemory[2] = {0, 0};
    std::uint64_t sourceMemory[4] = {0, 0, 0, 0};
};

static_assert(sizeof(ChampSimRecord) == 64,
              "ChampSim input_instr is 64 bytes");

/// @{ ChampSim architectural register identifiers.
inline constexpr std::uint8_t kChampSimRegStackPointer = 6;
inline constexpr std::uint8_t kChampSimRegFlags = 25;
inline constexpr std::uint8_t kChampSimRegInstructionPointer = 64;
/// @}

/**
 * ChampSim's branch taxonomy, derived from the register sets (see
 * ChampSim's tracer documentation).
 */
enum class ChampSimBranch : std::uint8_t
{
    kNotBranch,
    kConditional,    ///< reads FLAGS, writes IP.
    kDirectJump,     ///< writes IP only.
    kIndirectJump,   ///< reads other regs, writes IP.
    kDirectCall,     ///< reads IP+SP, writes IP+SP.
    kIndirectCall,   ///< reads other+IP+SP, writes IP+SP.
    kReturn,         ///< reads SP, writes IP+SP.
};

/** Classifies one record the way ChampSim does. */
ChampSimBranch classifyChampSimBranch(const ChampSimRecord &rec);

/** Maps a ChampSim branch class onto this simulator's InstClass. */
InstClass toInstClass(ChampSimBranch b, bool is_load, bool is_store);

/**
 * Exports a trace to ChampSim's record format.
 * @return false on I/O failure.
 */
bool writeChampSimTrace(const std::string &path, const Trace &trace);

/**
 * Imports a ChampSim trace: reads up to @p max_insts records, builds a
 * renormalized program image plus a committed-path Trace over it.
 *
 * @param path       raw (uncompressed) ChampSim trace file.
 * @param max_insts  record cap (0 = read everything).
 * @param out        receives the reconstructed trace.
 * @return false on I/O failure or malformed input.
 */
bool readChampSimTrace(const std::string &path, std::size_t max_insts,
                       Trace &out);

} // namespace fdip

#endif // FDIP_TRACE_CHAMPSIM_H_
