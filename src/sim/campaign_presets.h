/**
 * @file
 * Named campaigns for `fdipsim --campaign`: curated config x workload
 * cross products mirroring the paper's figure sweeps, so the spooled
 * campaign service (sim/campaign_store.h) can be driven — sharded,
 * killed, resumed, merged — from the command line without writing a
 * bench binary.
 *
 * Every preset sets CampaignEntry::prefetcherId explicitly, so the
 * manifest hash names the prefetcher by its factory name rather than
 * by display label.
 */

#ifndef FDIP_SIM_CAMPAIGN_PRESETS_H_
#define FDIP_SIM_CAMPAIGN_PRESETS_H_

#include <string>
#include <vector>

#include "sim/parallel.h"

namespace fdip
{

/** One selectable campaign. */
struct CampaignPreset
{
    const char *name;        ///< `fdipsim --campaign <name>`.
    const char *description; ///< One line for --help.
};

/** All presets, in display order. */
std::vector<CampaignPreset> campaignPresets();

/**
 * Builds the labeled entries of preset @p name. Fatal (clear message
 * listing the valid names) when @p name is unknown.
 */
std::vector<CampaignEntry>
buildCampaignEntries(const std::string &name);

} // namespace fdip

#endif // FDIP_SIM_CAMPAIGN_PRESETS_H_
