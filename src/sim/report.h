/**
 * @file
 * Machine-readable experiment reporting: JSON and CSV dumps of suite
 * results, so figures can be re-plotted outside the simulator.
 */

#ifndef FDIP_SIM_REPORT_H_
#define FDIP_SIM_REPORT_H_

#include <string>
#include <vector>

#include "sim/experiment.h"

namespace fdip
{

/**
 * Writes one or more labeled suite results as a JSON document:
 *
 * {
 *   "results": [
 *     {"label": "...", "geomeanIpc": ..., "meanMpki": ...,
 *      "runs": [{"workload": "...", "ipc": ..., ...}, ...]},
 *     ...
 *   ]
 * }
 *
 * @return false on I/O failure.
 */
bool writeSuiteResultsJson(const std::string &path,
                           const std::vector<SuiteResult> &results);

/**
 * Writes per-workload metrics as CSV with a header row:
 * label,workload,ipc,mpki,starvation_per_ki,tag_accesses_per_ki,
 * l1i_mpki,pfc_fires,ghr_fixups.
 *
 * @return false on I/O failure.
 */
bool writeSuiteResultsCsv(const std::string &path,
                          const std::vector<SuiteResult> &results);

} // namespace fdip

#endif // FDIP_SIM_REPORT_H_
