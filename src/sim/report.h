/**
 * @file
 * Machine-readable experiment reporting: JSON and CSV dumps of suite
 * results, so figures can be re-plotted outside the simulator.
 */

#ifndef FDIP_SIM_REPORT_H_
#define FDIP_SIM_REPORT_H_

#include <string>
#include <vector>

#include "sim/experiment.h"

namespace fdip
{

/**
 * Writes one or more labeled suite results as a JSON document:
 *
 * {
 *   "results": [
 *     {"label": "...", "geomeanIpc": ..., "meanMpki": ...,
 *      "runs": [{"workload": "...", "ipc": ..., ...,
 *                "heartbeats": [{...}, ...]}, ...]},
 *     ...
 *   ]
 * }
 *
 * A run's "heartbeats" array is present only when the run recorded
 * heartbeat samples (FDIP_HEARTBEAT / CoreConfig::obs).
 *
 * @return false on I/O failure.
 */
bool writeSuiteResultsJson(const std::string &path,
                           const std::vector<SuiteResult> &results);

/**
 * Writes per-workload metrics as CSV with a header row:
 * label,workload,ipc,mpki,starvation_per_ki,tag_accesses_per_ki,
 * l1i_mpki,pfc_fires,ghr_fixups,prefetch_accuracy,prefetch_coverage,
 * prefetch_redundant_rate.
 *
 * @return false on I/O failure.
 */
bool writeSuiteResultsCsv(const std::string &path,
                          const std::vector<SuiteResult> &results);

/**
 * Writes every heartbeat sample across @p results as JSON Lines: one
 * object per line, {"label": "...", "workload": "...", "heartbeat":
 * {...}}, in suite order. Runs without samples contribute no lines.
 *
 * @return false on I/O failure.
 */
bool writeHeartbeatsJsonl(const std::string &path,
                          const std::vector<SuiteResult> &results);

/**
 * Writes the stat-registry snapshots captured per run (RunResult::
 * statDump, populated when ObsConfig::collectStats is set) as one JSON
 * document: {"results": [{"label": "...", "workload": "...",
 * "stats": {"name": value, ...}}, ...]}. Counters emit as integers,
 * derived values and histogram aggregates as doubles.
 *
 * @return false on I/O failure.
 */
bool writeStatDumpsJson(const std::string &path,
                        const std::vector<SuiteResult> &results);

} // namespace fdip

#endif // FDIP_SIM_REPORT_H_
