/**
 * @file
 * The campaign-at-scale service layer: a sharded, resumable,
 * content-addressed result store over the parallel experiment engine.
 *
 * Spool format v2 (see docs/CAMPAIGN.md for the full specification)
 * -----------------------------------------------------------------
 * A campaign is a *manifest*: the cross product of labeled configs and
 * suite workloads, each pair keyed by an FNV-1a content hash over the
 * canonical config serialization, the prefetcher identity, the
 * workload's full trace content, and the warmup fraction. The spool
 * directory holds, per manifest hash `H` (16 lowercase hex chars):
 *
 *   H.json   one completed-run record: a single JSON line carrying the
 *            record version, the hash, labels, all architectural
 *            counters, and an FNV checksum over those counters.
 *            Published atomically (temp + fsync + rename), so a record
 *            either exists completely or not at all.
 *   H.claim  an in-progress marker created with O_CREAT|O_EXCL: of N
 *            workers racing for the run, exactly one wins the claim.
 *            Contains the claimant's pid and hostname so crash
 *            recovery can reap claims owned by dead local processes.
 *
 * Guarantees
 * ----------
 * - Resume: a restarted campaign scans the spool, verifies every
 *   record (version, key-vs-content hash, counter checksum), skips
 *   verified work, and recomputes only the tail. Corrupt records are
 *   quarantined (renamed aside), never trusted and never fatal.
 * - Dedup: re-running a finished or overlapping campaign re-simulates
 *   nothing — content addressing makes repeated work free.
 * - Sharding: N `fdipsim --campaign` processes over one spool
 *   (same host or different hosts on a shared filesystem) claim
 *   disjoint entries and cooperatively drain one manifest.
 * - Byte-verifiability: the engine's determinism contract means a
 *   merged report assembled from any mixture of processes, hosts, and
 *   crash/resume cycles is byte-identical to one uninterrupted serial
 *   run. The test suite (tests/sim_campaign_resume_test.cc,
 *   tests/sim_campaign_shard_test.cc) asserts exactly that.
 */

#ifndef FDIP_SIM_CAMPAIGN_STORE_H_
#define FDIP_SIM_CAMPAIGN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/parallel.h"

namespace fdip
{

/** Spool record format version this build reads and writes.
 *  v2: SimStats grew the eight cycle-accounting buckets (38 counters);
 *  v1 records are quarantined as unknown-version and recomputed. */
inline constexpr int kCampaignRecordVersion = 2;

/** One completed (config, workload) run, as stored in the spool. */
struct CampaignRecord
{
    std::string hash;       ///< Manifest hash, 16 hex chars (file key).
    std::string label;      ///< Campaign entry label.
    std::string workload;   ///< Suite entry name.
    std::string prefetcher; ///< Prefetcher identity (see CampaignEntry).
    std::string configDigestHex; ///< configDigest() of the entry.
    SimStats stats;         ///< All architectural counters + host time.
};

/** FNV-1a checksum over the 38 architectural counters, in
 *  architecturalState() order. Host telemetry is excluded: the
 *  checksum certifies the *experiment result*, not the machine. */
std::uint64_t architecturalChecksum(const SimStats &stats);

/** Serializes @p record as one JSON line (newline-terminated). */
std::string campaignRecordJson(const CampaignRecord &record);

/**
 * Parses and *verifies* one spool record: the version must be known,
 * every field present, and the embedded checksum must match the
 * embedded counters. @return false with a reason in @p error.
 * (Key-vs-content consistency — filename stem == embedded hash — is
 * the spool scan's job, since only it knows the filename.)
 */
bool parseCampaignRecord(const std::string &line, CampaignRecord *record,
                         std::string *error);

/** One (entry, workload) pair of a campaign manifest. */
struct ManifestEntry
{
    std::size_t entryIdx = 0;
    std::size_t workloadIdx = 0;
    std::string hash; ///< 16-hex content hash (the spool key).
    std::string configDigestHex; ///< configDigest() of the resolved cfg.
    std::string prefetcherId;    ///< Effective identity (id or label).
};

/**
 * Builds the campaign manifest: one content hash per (config,
 * workload) pair, in campaign order. Configs are hashed *resolved*
 * (applyHistoryScheme applied), matching what the engine runs.
 */
std::vector<ManifestEntry>
buildManifest(const std::vector<CampaignEntry> &entries,
              const std::vector<SuiteEntry> &suite,
              double warmup_fraction);

/** Result of scanning a spool directory. */
struct SpoolScan
{
    /** Verified records keyed by manifest hash. */
    std::map<std::string, CampaignRecord> records;
    /** Files quarantined this scan (renamed to `<name>.quarantined`). */
    std::vector<std::string> quarantined;
};

/**
 * Scans @p spool_dir: parses and verifies every `*.json` record,
 * quarantines anything corrupt (truncated, bad checksum, unknown
 * version, hash/filename mismatch, duplicate content). Never throws
 * on bad data — a hostile spool degrades to recomputation, not a
 * crash. Fatal only if the directory itself is unusable.
 */
SpoolScan scanSpool(const std::string &spool_dir);

/** Per-drain accounting, for tests, logs, and the CLI summary. */
struct SpoolSummary
{
    std::size_t totalRuns = 0;   ///< Manifest size.
    std::size_t cacheHits = 0;   ///< Served from verified records.
    std::size_t simulated = 0;   ///< Claimed and run by this process.
    std::size_t claimedElsewhere = 0; ///< Skipped: another worker owns it.
    std::size_t reclaimed = 0;   ///< Dead claims reaped (resume).
    std::size_t quarantined = 0; ///< Corrupt files renamed aside.
    /** True when every manifest entry ended with a verified record. */
    bool complete = false;
};

/** Options for a spooled campaign drain. */
struct SpoolOptions
{
    std::string spoolDir;
    double warmupFraction = 0.2;
    unsigned jobs = 0; ///< 0 = FDIP_JOBS / hardware concurrency.

    /**
     * Reap claim files owned by dead processes of *this* host before
     * draining (the `--resume` behavior). Off by default so
     * concurrently-sharding workers never steal each other's work;
     * liveness is checked with kill(pid, 0), so a claim owned by a
     * live process is never reaped even under --resume.
     */
    bool reclaimDeadClaims = false;

    /**
     * Test interposer: invoked (on a worker thread) for every run
     * this process actually simulates. The zero-resimulation cache
     * tests count calls through this.
     */
    std::function<void(std::size_t entry, std::size_t workload)>
        onSimulate;
};

/**
 * Drains a campaign through a spool directory: verified records are
 * cache hits, unclaimed work is claimed (O_EXCL) and simulated with
 * the parallel engine, and every completed run is atomically
 * published before the worker moves on. Results come back in campaign
 * order with cache hits filled from the store; pairs still claimed by
 * a live sibling process are left zeroed and reported via
 * @p summary->complete == false (merge once the sibling finishes).
 *
 * Fatal (clear message, exit 1) when the spool directory cannot be
 * created or written — a misconfigured spool must not silently fall
 * back to recomputing everything.
 */
std::vector<SuiteResult>
runCampaignSpooled(const std::vector<CampaignEntry> &entries,
                   const std::vector<SuiteEntry> &suite,
                   const SpoolOptions &options,
                   SpoolSummary *summary = nullptr);

/**
 * Assembles the ordered campaign results purely from spool records —
 * zero simulation. Verifies every record's content hash and
 * architectural-counter checksum en route (scanSpool) and requires a
 * verified record for every manifest entry.
 *
 * @return false (with @p error naming the first missing hash) when
 *         the spool does not cover the manifest.
 */
bool mergeCampaignSpool(const std::vector<CampaignEntry> &entries,
                        const std::vector<SuiteEntry> &suite,
                        const std::string &spool_dir,
                        double warmup_fraction,
                        std::vector<SuiteResult> *results,
                        SpoolSummary *summary, std::string *error);

/**
 * Validates that @p dir is usable as a spool: creates it (and
 * parents) if missing and probes writability with a real file.
 * Fatal with a clear message otherwise. Returns @p dir.
 */
std::string openSpool(const std::string &dir);

/** FDIP_SPOOL environment override: the spool directory bench
 *  binaries and `fdipsim --campaign` use when no --spool flag is
 *  given. Empty when unset. Read once on the coordinating thread. */
std::string spoolFromEnv();

} // namespace fdip

#endif // FDIP_SIM_CAMPAIGN_STORE_H_
