/**
 * @file
 * The parallel experiment engine: fans (config, workload) pairs out
 * over a pool of worker threads while keeping results bit-identical to
 * the serial harness.
 *
 * Determinism contract
 * --------------------
 * Every run is an independent unit of work: a fresh Core and a fresh
 * prefetcher over an immutable, shared Trace. Workers never share
 * mutable simulator state, so per-run SimStats are bit-identical to
 * `runSuite` regardless of the worker count or scheduling order, and
 * results are collected back into their original suite order before
 * any aggregate (geomean IPC, speedups) is computed. The test suite
 * (tests/sim_parallel_test.cc) asserts this equivalence for
 * jobs = 1, 2, 8; any new engine must land with the same kind of
 * serial-equivalence test.
 *
 * The contract is also a compile-time property: all engine
 * synchronization goes through the capability-annotated primitives of
 * util/sync.h (clang -Wthread-safety, the `thread-safety` CMake
 * preset), and tools/lint/check_concurrency.py bans raw primitives
 * and ambient static state from worker-path code — see
 * docs/ANALYSIS.md §6.
 *
 * Worker count resolution: an explicit `jobs` argument wins; `jobs = 0`
 * defers to the FDIP_JOBS environment variable; when that is unset (or
 * invalid, with a warning) the hardware concurrency is used. `jobs = 1`
 * executes on the calling thread with no pool at all — the exact serial
 * fallback.
 */

#ifndef FDIP_SIM_PARALLEL_H_
#define FDIP_SIM_PARALLEL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace fdip
{

/**
 * Resolves the worker count for the parallel engine.
 *
 * @param fallback value to use when FDIP_JOBS is unset or invalid;
 *                 0 means std::thread::hardware_concurrency() (itself
 *                 clamped to at least 1).
 *
 * FDIP_JOBS must be a plain positive decimal integer no larger than
 * kMaxJobs; `0`, garbage, negative, or huge values fall back to
 * @p fallback with a warning rather than crashing or oversubscribing.
 */
unsigned jobsFromEnv(unsigned fallback = 0);

/** Upper bound accepted from FDIP_JOBS before falling back. */
inline constexpr unsigned kMaxJobs = 1024;

/**
 * Parallel drop-in for runSuite(): same signature plus a worker count.
 * Per-run SimStats and the run order are bit-identical to the serial
 * path for any @p jobs.
 *
 * @param jobs worker threads; 0 resolves via jobsFromEnv().
 */
SuiteResult runSuiteParallel(const std::string &label, CoreConfig cfg,
                             const std::vector<SuiteEntry> &suite,
                             const PrefetcherFactory &make_prefetcher,
                             double warmup_fraction = 0.2,
                             unsigned jobs = 0);

/** One labeled configuration inside a campaign. */
struct CampaignEntry
{
    std::string label;
    CoreConfig cfg;
    PrefetcherFactory makePrefetcher;

    /**
     * Stable identity of the prefetcher behind makePrefetcher (the
     * factory name, e.g. "eip-27"), woven into the campaign manifest
     * hash. std::function is opaque, so content addressing needs the
     * caller to say which prefetcher a config runs; empty falls back
     * to `label`, which is correct whenever distinct prefetchers carry
     * distinct labels (every bench does).
     */
    std::string prefetcherId;
};

/**
 * Per-run callbacks for campaign engines that need to observe or
 * filter individual (config, workload) runs — the spooled campaign
 * service (sim/campaign_store.h) implements claim files and
 * crash-safe result records with exactly these two hooks.
 *
 * Both callbacks are invoked on *worker threads*, at most once per
 * (entry, workload) pair, and must be thread-safe. They must not
 * touch shared mutable state except through util/sync.h primitives or
 * by writing distinct per-run files.
 */
struct CampaignHooks
{
    /**
     * Claim filter, called when a worker picks the pair up. Return
     * false to skip simulating it — its preallocated result slot is
     * left default-constructed. Null means "claim everything".
     */
    std::function<bool(std::size_t entry, std::size_t workload)> claimRun;

    /**
     * Completion callback, called right after a run finishes (before
     * the worker claims its next item), so results can be persisted
     * incrementally — a crash loses at most the runs in flight.
     */
    std::function<void(std::size_t entry, std::size_t workload,
                       const RunResult &result)>
        onRunComplete;
};

/**
 * Runs every labeled config over the whole suite, fanning all
 * (config, workload) pairs out over one shared pool — the shape every
 * bench binary needs (many configs, one suite). Results are returned
 * in `entries` order, each with runs in suite order, bit-identical to
 * calling runSuite() per entry.
 *
 * @param jobs worker threads; 0 resolves via jobsFromEnv().
 */
std::vector<SuiteResult>
runCampaign(const std::vector<CampaignEntry> &entries,
            const std::vector<SuiteEntry> &suite,
            double warmup_fraction = 0.2, unsigned jobs = 0);

/**
 * runCampaign() with per-run hooks (see CampaignHooks). Pairs whose
 * claimRun returns false are skipped: their result slots stay
 * default-constructed and the caller is expected to fill them from
 * its own store. Hook-free calls are exactly runCampaign().
 */
std::vector<SuiteResult>
runCampaignHooked(const std::vector<CampaignEntry> &entries,
                  const std::vector<SuiteEntry> &suite,
                  double warmup_fraction, unsigned jobs,
                  const CampaignHooks &hooks);

/**
 * Builder over runCampaign(): accumulate labeled configs against one
 * suite, run them all at once, look results up by index or label.
 *
 *   Campaign c(workloads);
 *   const auto base = c.add("baseline", noFdpConfig(), noPrefetcher());
 *   const auto fdp  = c.add("FDP", paperBaselineConfig(), noPrefetcher());
 *   const auto res  = c.run();             // honors FDIP_JOBS
 *   res[fdp].speedupOver(res[base]);
 *
 * The suite is borrowed and must outlive the campaign; traces are
 * shared read-only across all runs and workers.
 */
class Campaign
{
  public:
    explicit Campaign(const std::vector<SuiteEntry> &suite,
                      double warmup_fraction = 0.2)
        : suite_(suite), warmupFraction_(warmup_fraction)
    {
    }

    /** Adds a labeled config; returns its index into run()'s result.
     *  @p prefetcher_id names the prefetcher for content addressing
     *  (see CampaignEntry::prefetcherId; empty = use the label). */
    std::size_t add(std::string label, CoreConfig cfg,
                    PrefetcherFactory make_prefetcher,
                    std::string prefetcher_id = {});

    std::size_t size() const { return entries_.size(); }

    /** Runs all configs; results in add() order. 0 = jobsFromEnv(). */
    std::vector<SuiteResult> run(unsigned jobs = 0) const;

    /** The accumulated entries (for spooled runs; see
     *  sim/campaign_store.h). */
    const std::vector<CampaignEntry> &entries() const { return entries_; }

    /** The borrowed suite. */
    const std::vector<SuiteEntry> &suite() const { return suite_; }

    /** The warmup fraction every run uses. */
    double warmupFraction() const { return warmupFraction_; }

  private:
    const std::vector<SuiteEntry> &suite_;
    double warmupFraction_;
    std::vector<CampaignEntry> entries_;
};

} // namespace fdip

#endif // FDIP_SIM_PARALLEL_H_
