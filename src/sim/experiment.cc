#include "sim/experiment.h"

#include <chrono>

#include "obs/obs_config.h"
#include "obs/trace_events.h"
#include "util/fnv.h"
#include "util/log.h"
#include "util/stats.h"

namespace fdip
{

PrefetcherFactory
noPrefetcher()
{
    return [](const Trace &) { return std::make_unique<NullPrefetcher>(); };
}

double
SuiteResult::geomeanIpc() const
{
    std::vector<double> v;
    v.reserve(runs.size());
    for (const auto &r : runs)
        v.push_back(r.stats.ipc());
    return geometricMean(v);
}

double
SuiteResult::meanMpki() const
{
    std::vector<double> v;
    v.reserve(runs.size());
    for (const auto &r : runs)
        v.push_back(r.stats.branchMpki());
    return arithmeticMean(v);
}

double
SuiteResult::meanStarvationPerKi() const
{
    std::vector<double> v;
    v.reserve(runs.size());
    for (const auto &r : runs)
        v.push_back(r.stats.starvationPerKi());
    return arithmeticMean(v);
}

double
SuiteResult::meanTagAccessesPerKi() const
{
    std::vector<double> v;
    v.reserve(runs.size());
    for (const auto &r : runs)
        v.push_back(r.stats.tagAccessesPerKi());
    return arithmeticMean(v);
}

double
SuiteResult::speedupOver(const SuiteResult &base) const
{
    if (runs.size() != base.runs.size())
        fdip_fatal("speedupOver: mismatched suite sizes %zu vs %zu",
                   runs.size(), base.runs.size());
    std::vector<double> v;
    v.reserve(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i)
        v.push_back(runs[i].stats.ipc() / base.runs[i].stats.ipc());
    return geometricMean(v);
}

RunResult
runOne(const CoreConfig &cfg, const SuiteEntry &entry,
       const PrefetcherFactory &make_prefetcher, double warmup_fraction)
{
    Core core(cfg, entry.trace, make_prefetcher(entry.trace));

    // Per-run trace sink: one file per (label, workload), opened and
    // owned here so parallel runs never share a writer.
    std::unique_ptr<TraceWriter> trace_writer;
    const std::string trace_path = tracePathForRun(cfg.obs, entry.name);
    if (!trace_path.empty()) {
        trace_writer = std::make_unique<TraceWriter>(trace_path);
        if (trace_writer->ok())
            core.attachTrace(trace_writer.get());
    }

    const auto warmup = static_cast<std::uint64_t>(
        static_cast<double>(entry.trace.size()) * warmup_fraction);
    RunResult run;
    run.workload = entry.name;
    const auto t0 = std::chrono::steady_clock::now();
    run.stats = core.run(warmup);
    const auto t1 = std::chrono::steady_clock::now();
    run.stats.hostWallSeconds =
        std::chrono::duration<double>(t1 - t0).count();

    run.heartbeats = core.heartbeats();
    if (cfg.obs.profileInterval != 0)
        run.hostPhases = core.hostProfile();
    if (cfg.obs.collectStats) {
        StatRegistry reg;
        core.registerStats(reg);
        run.statDump = reg.snapshot();
    }
    return run;
}

SuiteResult
runSuite(const std::string &label, CoreConfig cfg,
         const std::vector<SuiteEntry> &suite,
         const PrefetcherFactory &make_prefetcher, double warmup_fraction)
{
    cfg.applyHistoryScheme();
    cfg.obs = resolveObsEnv(cfg.obs);
    if (cfg.obs.traceLabel.empty())
        cfg.obs.traceLabel = label;
    SuiteResult result;
    result.label = label;
    result.runs.reserve(suite.size());
    for (const auto &entry : suite)
        result.runs.push_back(
            runOne(cfg, entry, make_prefetcher, warmup_fraction));
    return result;
}

std::vector<SuiteEntry>
benchSuite(std::size_t default_insts)
{
    return buildStandardSuite(suiteInstsFromEnv(default_insts),
                              suiteSmallFromEnv());
}

namespace
{

/** Appends one canonical "key=value\n" line. Integral and bool knobs
 *  all serialize through uint64 (bool as 0/1), so every width of
 *  config field spells its value exactly one way. */
template <typename T>
void
kv(std::string &out, const char *key, T value)
{
    out += key;
    out += '=';
    out += std::to_string(static_cast<std::uint64_t>(value));
    out += '\n';
}

/** One cache geometry as canonical lines under a @p prefix. */
void
kvCache(std::string &out, const std::string &prefix,
        const CacheConfig &c)
{
    kv(out, (prefix + ".sizeBytes").c_str(), c.sizeBytes);
    kv(out, (prefix + ".ways").c_str(), c.ways);
    kv(out, (prefix + ".lineBytes").c_str(), c.lineBytes);
    kv(out, (prefix + ".replacement").c_str(),
       static_cast<std::uint64_t>(c.replacement));
}

} // namespace

std::string
canonicalConfigText(const CoreConfig &cfg)
{
    std::string out = "fdip-config-v1\n";

    kv(out, "ftqEntries", cfg.ftqEntries);
    kv(out, "predictBandwidth", cfg.predictBandwidth);
    kv(out, "maxTakenPerCycle", cfg.maxTakenPerCycle);
    kv(out, "fetchBandwidth", cfg.fetchBandwidth);
    kv(out, "btbLatency", cfg.btbLatency);
    kv(out, "fetchProbesPerCycle", cfg.fetchProbesPerCycle);

    kv(out, "pfcEnabled", cfg.pfcEnabled);
    kv(out, "pfcUnconditionalOnly", cfg.pfcUnconditionalOnly);
    kv(out, "historyScheme",
       static_cast<std::uint64_t>(cfg.historyScheme));

    kv(out, "decodeQueueEntries", cfg.decodeQueueEntries);
    kv(out, "decodeLatency", cfg.decodeLatency);
    kv(out, "commitWidth", cfg.commitWidth);
    kv(out, "robEntries", cfg.robEntries);
    kv(out, "branchResolveLatency", cfg.branchResolveLatency);

    kvCache(out, "l1i", cfg.l1i);
    kv(out, "l1iHitLatency", cfg.l1iHitLatency);
    kv(out, "l1iMshrs", cfg.l1iMshrs);
    kv(out, "itlbEntries", cfg.itlbEntries);
    kv(out, "itlbMissPenalty", cfg.itlbMissPenalty);
    kvCache(out, "mem.l1d", cfg.mem.l1d);
    kvCache(out, "mem.l2", cfg.mem.l2);
    kvCache(out, "mem.llc", cfg.mem.llc);
    kv(out, "mem.l1dLatency", cfg.mem.l1dLatency);
    kv(out, "mem.l2Latency", cfg.mem.l2Latency);
    kv(out, "mem.llcLatency", cfg.mem.llcLatency);
    kv(out, "mem.dramLatency", cfg.mem.dramLatency);
    kv(out, "mem.dramOccupancy", cfg.mem.dramOccupancy);

    kv(out, "bpu.historyPolicy",
       static_cast<std::uint64_t>(cfg.bpu.historyPolicy));
    kv(out, "bpu.direction",
       static_cast<std::uint64_t>(cfg.bpu.direction));
    kv(out, "bpu.tageKilobytes", cfg.bpu.tageKilobytes);
    kv(out, "bpu.directionHistoryBits", cfg.bpu.directionHistoryBits);
    kv(out, "bpu.btb.numEntries", cfg.bpu.btb.numEntries);
    kv(out, "bpu.btb.ways", cfg.bpu.btb.ways);
    kv(out, "bpu.btb.allocateTakenOnly", cfg.bpu.btb.allocateTakenOnly);
    kv(out, "bpu.btb.bytesPerEntry", cfg.bpu.btb.bytesPerEntry);
    kv(out, "bpu.btbHierarchy.enabled", cfg.bpu.btbHierarchy.enabled);
    kv(out, "bpu.btbHierarchy.l1Entries", cfg.bpu.btbHierarchy.l1Entries);
    kv(out, "bpu.btbHierarchy.l1Ways", cfg.bpu.btbHierarchy.l1Ways);
    kv(out, "bpu.btbHierarchy.l2ExtraLatency",
       cfg.bpu.btbHierarchy.l2ExtraLatency);
    kv(out, "bpu.ittage.numTables", cfg.bpu.ittage.numTables);
    kv(out, "bpu.ittage.minHistory", cfg.bpu.ittage.minHistory);
    kv(out, "bpu.ittage.maxHistory", cfg.bpu.ittage.maxHistory);
    kv(out, "bpu.ittage.logEntries", cfg.bpu.ittage.logEntries);
    kv(out, "bpu.ittage.tagBits", cfg.bpu.ittage.tagBits);
    kv(out, "bpu.ittage.logBaseEntries", cfg.bpu.ittage.logBaseEntries);
    kv(out, "bpu.rasDepth", cfg.bpu.rasDepth);
    kv(out, "bpu.useLoopPredictor", cfg.bpu.useLoopPredictor);
    kv(out, "bpu.loopPredictor.logEntries",
       cfg.bpu.loopPredictor.logEntries);
    kv(out, "bpu.loopPredictor.ways", cfg.bpu.loopPredictor.ways);
    kv(out, "bpu.loopPredictor.confidenceMax",
       cfg.bpu.loopPredictor.confidenceMax);
    kv(out, "bpu.loopPredictor.maxTrip", cfg.bpu.loopPredictor.maxTrip);
    kv(out, "bpu.perfectBtb", cfg.bpu.perfectBtb);
    kv(out, "bpu.perfectIndirect", cfg.bpu.perfectIndirect);

    kv(out, "perfectPrefetch", cfg.perfectPrefetch);
    kv(out, "perfectICache", cfg.perfectICache);
    kv(out, "prefetchesPerCycle", cfg.prefetchesPerCycle);
    kv(out, "usePrefetchBuffer", cfg.usePrefetchBuffer);
    kv(out, "prefetchBufferLines", cfg.prefetchBufferLines);

    return out;
}

std::uint64_t
configDigest(const CoreConfig &cfg)
{
    return fnv1a64(canonicalConfigText(cfg));
}

std::uint64_t
traceDigest(const SuiteEntry &entry)
{
    std::uint64_t h = fnv1a64("fdip-trace-v1\n");
    h = fnv1a64(entry.name, h);
    h = fnv1aByte(0, h); // Name/content separator.

    const ProgramImage &image = entry.trace.image();
    h = fnv1aMix(image.baseAddr(), h);
    h = fnv1aMix(image.numInsts(), h);
    for (std::uint32_t i = 0; i < image.numInsts(); ++i) {
        const StaticInst &si = image.inst(i);
        h = fnv1aMix(static_cast<std::uint64_t>(si.cls), h);
        h = fnv1aMix(static_cast<std::uint64_t>(si.param), h);
        h = fnv1aMix(si.target, h);
    }

    // The dynamic stream hashes as raw bytes: DynInst's 16-byte layout
    // is static_asserted stable and its padding is explicitly zeroed.
    h = fnv1aMix(entry.trace.insts.size(), h);
    if (!entry.trace.insts.empty()) {
        h = fnv1a64Bytes(entry.trace.insts.data(),
                         entry.trace.insts.size() * sizeof(DynInst), h);
    }
    return h;
}

} // namespace fdip
