#include "sim/experiment.h"

#include <chrono>

#include "obs/obs_config.h"
#include "obs/trace_events.h"
#include "util/log.h"
#include "util/stats.h"

namespace fdip
{

PrefetcherFactory
noPrefetcher()
{
    return [](const Trace &) { return std::make_unique<NullPrefetcher>(); };
}

double
SuiteResult::geomeanIpc() const
{
    std::vector<double> v;
    v.reserve(runs.size());
    for (const auto &r : runs)
        v.push_back(r.stats.ipc());
    return geometricMean(v);
}

double
SuiteResult::meanMpki() const
{
    std::vector<double> v;
    v.reserve(runs.size());
    for (const auto &r : runs)
        v.push_back(r.stats.branchMpki());
    return arithmeticMean(v);
}

double
SuiteResult::meanStarvationPerKi() const
{
    std::vector<double> v;
    v.reserve(runs.size());
    for (const auto &r : runs)
        v.push_back(r.stats.starvationPerKi());
    return arithmeticMean(v);
}

double
SuiteResult::meanTagAccessesPerKi() const
{
    std::vector<double> v;
    v.reserve(runs.size());
    for (const auto &r : runs)
        v.push_back(r.stats.tagAccessesPerKi());
    return arithmeticMean(v);
}

double
SuiteResult::speedupOver(const SuiteResult &base) const
{
    if (runs.size() != base.runs.size())
        fdip_fatal("speedupOver: mismatched suite sizes %zu vs %zu",
                   runs.size(), base.runs.size());
    std::vector<double> v;
    v.reserve(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i)
        v.push_back(runs[i].stats.ipc() / base.runs[i].stats.ipc());
    return geometricMean(v);
}

RunResult
runOne(const CoreConfig &cfg, const SuiteEntry &entry,
       const PrefetcherFactory &make_prefetcher, double warmup_fraction)
{
    Core core(cfg, entry.trace, make_prefetcher(entry.trace));

    // Per-run trace sink: one file per (label, workload), opened and
    // owned here so parallel runs never share a writer.
    std::unique_ptr<TraceWriter> trace_writer;
    const std::string trace_path = tracePathForRun(cfg.obs, entry.name);
    if (!trace_path.empty()) {
        trace_writer = std::make_unique<TraceWriter>(trace_path);
        if (trace_writer->ok())
            core.attachTrace(trace_writer.get());
    }

    const auto warmup = static_cast<std::uint64_t>(
        static_cast<double>(entry.trace.size()) * warmup_fraction);
    RunResult run;
    run.workload = entry.name;
    const auto t0 = std::chrono::steady_clock::now();
    run.stats = core.run(warmup);
    const auto t1 = std::chrono::steady_clock::now();
    run.stats.hostWallSeconds =
        std::chrono::duration<double>(t1 - t0).count();

    run.heartbeats = core.heartbeats();
    if (cfg.obs.collectStats) {
        StatRegistry reg;
        core.registerStats(reg);
        run.statDump = reg.snapshot();
    }
    return run;
}

SuiteResult
runSuite(const std::string &label, CoreConfig cfg,
         const std::vector<SuiteEntry> &suite,
         const PrefetcherFactory &make_prefetcher, double warmup_fraction)
{
    cfg.applyHistoryScheme();
    cfg.obs = resolveObsEnv(cfg.obs);
    if (cfg.obs.traceLabel.empty())
        cfg.obs.traceLabel = label;
    SuiteResult result;
    result.label = label;
    result.runs.reserve(suite.size());
    for (const auto &entry : suite)
        result.runs.push_back(
            runOne(cfg, entry, make_prefetcher, warmup_fraction));
    return result;
}

std::vector<SuiteEntry>
benchSuite(std::size_t default_insts)
{
    return buildStandardSuite(suiteInstsFromEnv(default_insts),
                              suiteSmallFromEnv());
}

} // namespace fdip
