#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/obs_config.h"
#include "util/log.h"

namespace fdip
{

namespace
{

/**
 * One (config, workload) pair awaiting execution, plus the slot its
 * result lands in. Slots are preallocated so workers never contend on
 * a results container and completion order cannot perturb output
 * order.
 */
struct WorkItem
{
    const CampaignEntry *entry;
    const SuiteEntry *workload;
    RunResult *slot;
};

/**
 * Executes @p items over @p jobs workers. Work is claimed through one
 * atomic cursor (no per-item locks); each item writes only its own
 * preallocated slot. The first exception thrown by any run is captured
 * and rethrown on the calling thread after every worker has joined, so
 * an FDIP_CHECK violation inside a worker surfaces exactly like it
 * does serially.
 */
void
drainPool(const std::vector<WorkItem> &items, double warmup_fraction,
          unsigned jobs)
{
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&]() {
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                return;
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= items.size())
                return;
            const WorkItem &item = items[i];
            try {
                *item.slot =
                    runOne(item.entry->cfg, *item.workload,
                           item.entry->makePrefetcher, warmup_fraction);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    if (jobs <= 1 || items.size() <= 1) {
        // Exact serial fallback: same claim loop, calling thread only.
        worker();
    } else {
        const unsigned n =
            static_cast<unsigned>(std::min<std::size_t>(jobs, items.size()));
        std::vector<std::thread> threads;
        threads.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            threads.emplace_back(worker);
        for (auto &th : threads)
            th.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace

unsigned
jobsFromEnv(unsigned fallback)
{
    if (fallback == 0)
        fallback = std::max(1u, std::thread::hardware_concurrency());
    const char *v = std::getenv("FDIP_JOBS");
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    errno = 0;
    const unsigned long n = std::strtoul(v, &end, 10);
    if (errno != 0 || end == v || *end != '\0' || *v == '-' || n == 0 ||
        n > kMaxJobs) {
        fdip_warn("FDIP_JOBS='%s' is not a valid worker count "
                  "(want 1..%u); using %u",
                  v, kMaxJobs, fallback);
        return fallback;
    }
    return static_cast<unsigned>(n);
}

std::vector<SuiteResult>
runCampaign(const std::vector<CampaignEntry> &entries,
            const std::vector<SuiteEntry> &suite, double warmup_fraction,
            unsigned jobs)
{
    // Resolve configs and the worker count up front, on the calling
    // thread: applyHistoryScheme() mutates the config and getenv() is
    // not something workers should race on (observability env included).
    std::vector<CampaignEntry> resolved = entries;
    for (auto &e : resolved) {
        e.cfg.applyHistoryScheme();
        e.cfg.obs = resolveObsEnv(e.cfg.obs);
        if (e.cfg.obs.traceLabel.empty())
            e.cfg.obs.traceLabel = e.label;
    }
    if (jobs == 0)
        jobs = jobsFromEnv();

    std::vector<SuiteResult> results(resolved.size());
    for (std::size_t c = 0; c < resolved.size(); ++c) {
        results[c].label = resolved[c].label;
        results[c].runs.resize(suite.size());
    }

    std::vector<WorkItem> items;
    items.reserve(resolved.size() * suite.size());
    for (std::size_t c = 0; c < resolved.size(); ++c) {
        for (std::size_t w = 0; w < suite.size(); ++w) {
            items.push_back(WorkItem{&resolved[c], &suite[w],
                                     &results[c].runs[w]});
        }
    }

    drainPool(items, warmup_fraction, jobs);
    return results;
}

SuiteResult
runSuiteParallel(const std::string &label, CoreConfig cfg,
                 const std::vector<SuiteEntry> &suite,
                 const PrefetcherFactory &make_prefetcher,
                 double warmup_fraction, unsigned jobs)
{
    std::vector<CampaignEntry> one;
    one.push_back(CampaignEntry{label, std::move(cfg), make_prefetcher});
    auto results = runCampaign(one, suite, warmup_fraction, jobs);
    return std::move(results.front());
}

std::size_t
Campaign::add(std::string label, CoreConfig cfg,
              PrefetcherFactory make_prefetcher)
{
    entries_.push_back(CampaignEntry{std::move(label), std::move(cfg),
                                     std::move(make_prefetcher)});
    return entries_.size() - 1;
}

std::vector<SuiteResult>
Campaign::run(unsigned jobs) const
{
    return runCampaign(entries_, suite_, warmupFraction_, jobs);
}

} // namespace fdip
