#include "sim/parallel.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <thread>

#include "obs/obs_config.h"
#include "util/log.h"
#include "util/sync.h"

namespace fdip
{

namespace
{

/**
 * One (config, workload) pair awaiting execution, plus the slot its
 * result lands in. Slots are preallocated so workers never contend on
 * a results container and completion order cannot perturb output
 * order.
 */
struct WorkItem
{
    /** Shared read-only inputs: workers reach the campaign entry, the
     *  workload, and (through it) the decoded trace exclusively via
     *  these const views, so many concurrent runs can alias one trace
     *  without synchronization. */
    const CampaignEntry *entry;
    const SuiteEntry *workload;
    /** Exclusively owned output: slot i is touched only by whichever
     *  worker claimed item i from the cursor, never concurrently. */
    RunResult *slot;
    /** (entry, workload) indices reported to the campaign hooks. */
    std::size_t entryIdx;
    std::size_t workloadIdx;
};

/**
 * The shared state of one pool drain, with every concurrency rule
 * expressed as a capability annotation: the work list is a const view,
 * claiming goes through one atomic cursor (no per-item locks), each
 * item writes only its own preallocated slot, and the only
 * lock-guarded member is the first-error capture. The first exception
 * thrown by any run is rethrown on the calling thread after every
 * worker has joined, so an FDIP_CHECK violation inside a worker
 * surfaces exactly like it does serially.
 */
class WorkPool
{
  public:
    WorkPool(const std::vector<WorkItem> &items, double warmup_fraction,
             const CampaignHooks &hooks)
        : items_(items), warmupFraction_(warmup_fraction), hooks_(hooks)
    {
    }

    /** The claim loop: runs items until the list is drained or a
     *  sibling worker has failed. Safe to call from any thread. */
    void
    work()
    {
        for (;;) {
            if (failed_.load(std::memory_order_relaxed))
                return;
            const std::size_t i =
                cursor_.fetchAdd(1, std::memory_order_relaxed);
            if (i >= items_.size())
                return;
            const WorkItem &item = items_[i];
            try {
                if (hooks_.claimRun &&
                    !hooks_.claimRun(item.entryIdx, item.workloadIdx))
                    continue;
                *item.slot =
                    runOne(item.entry->cfg, *item.workload,
                           item.entry->makePrefetcher, warmupFraction_);
                if (hooks_.onRunComplete) {
                    hooks_.onRunComplete(item.entryIdx,
                                         item.workloadIdx, *item.slot);
                }
            } catch (...) {
                recordError(std::current_exception());
                return;
            }
        }
    }

    /** Rethrows the first captured worker error, if any. Call after
     *  every worker has joined. */
    void
    rethrowPending()
    {
        std::exception_ptr err;
        {
            MutexLock lock(errorMutex_);
            err = firstError_;
        }
        if (err)
            std::rethrow_exception(err);
    }

  private:
    void
    recordError(std::exception_ptr err)
    {
        MutexLock lock(errorMutex_);
        if (!firstError_)
            firstError_ = err;
        failed_.store(true, std::memory_order_relaxed);
    }

    /// @{ Shared read-only (safe to alias across workers). The hooks
    /// are invoked concurrently and are documented thread-safe
    /// (parallel.h: CampaignHooks).
    const std::vector<WorkItem> &items_;
    const double warmupFraction_;
    const CampaignHooks &hooks_;
    /// @}

    /// @{ Lock-free claim protocol.
    Atomic<std::size_t> cursor_{0};
    Atomic<bool> failed_{false};
    /// @}

    Mutex errorMutex_;
    std::exception_ptr firstError_ FDIP_GUARDED_BY(errorMutex_);
};

/** Executes @p items over @p jobs workers (see WorkPool). */
void
drainPool(const std::vector<WorkItem> &items, double warmup_fraction,
          unsigned jobs, const CampaignHooks &hooks)
{
    WorkPool pool(items, warmup_fraction, hooks);

    if (jobs <= 1 || items.size() <= 1) {
        // Exact serial fallback: same claim loop, calling thread only.
        pool.work();
    } else {
        const unsigned n =
            static_cast<unsigned>(std::min<std::size_t>(jobs, items.size()));
        std::vector<std::thread> threads;
        threads.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            threads.emplace_back([&pool]() { pool.work(); });
        for (auto &th : threads)
            th.join();
    }

    pool.rethrowPending();
}

} // namespace

unsigned
jobsFromEnv(unsigned fallback)
{
    if (fallback == 0)
        fallback = std::max(1u, std::thread::hardware_concurrency());
    // Coordinating-thread opt-in, read before any worker exists
    // (check_determinism.py allowlists this file for getenv).
    const char *v = std::getenv("FDIP_JOBS"); // NOLINT(concurrency-mt-unsafe)
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    errno = 0;
    const unsigned long n = std::strtoul(v, &end, 10);
    if (errno != 0 || end == v || *end != '\0' || *v == '-' || n == 0 ||
        n > kMaxJobs) {
        fdip_warn("FDIP_JOBS='%s' is not a valid worker count "
                  "(want 1..%u); using %u",
                  v, kMaxJobs, fallback);
        return fallback;
    }
    return static_cast<unsigned>(n);
}

std::vector<SuiteResult>
runCampaignHooked(const std::vector<CampaignEntry> &entries,
                  const std::vector<SuiteEntry> &suite,
                  double warmup_fraction, unsigned jobs,
                  const CampaignHooks &hooks)
{
    // Resolve configs and the worker count up front, on the calling
    // thread: applyHistoryScheme() mutates the config and getenv() is
    // not something workers should race on (observability env included).
    std::vector<CampaignEntry> resolved = entries;
    for (auto &e : resolved) {
        e.cfg.applyHistoryScheme();
        e.cfg.obs = resolveObsEnv(e.cfg.obs);
        if (e.cfg.obs.traceLabel.empty())
            e.cfg.obs.traceLabel = e.label;
    }
    if (jobs == 0)
        jobs = jobsFromEnv();

    std::vector<SuiteResult> results(resolved.size());
    for (std::size_t c = 0; c < resolved.size(); ++c) {
        results[c].label = resolved[c].label;
        results[c].runs.resize(suite.size());
    }

    std::vector<WorkItem> items;
    items.reserve(resolved.size() * suite.size());
    for (std::size_t c = 0; c < resolved.size(); ++c) {
        for (std::size_t w = 0; w < suite.size(); ++w) {
            items.push_back(WorkItem{&resolved[c], &suite[w],
                                     &results[c].runs[w], c, w});
        }
    }

    drainPool(items, warmup_fraction, jobs, hooks);
    return results;
}

std::vector<SuiteResult>
runCampaign(const std::vector<CampaignEntry> &entries,
            const std::vector<SuiteEntry> &suite, double warmup_fraction,
            unsigned jobs)
{
    return runCampaignHooked(entries, suite, warmup_fraction, jobs,
                             CampaignHooks{});
}

SuiteResult
runSuiteParallel(const std::string &label, CoreConfig cfg,
                 const std::vector<SuiteEntry> &suite,
                 const PrefetcherFactory &make_prefetcher,
                 double warmup_fraction, unsigned jobs)
{
    std::vector<CampaignEntry> one;
    one.push_back(
        CampaignEntry{label, std::move(cfg), make_prefetcher, {}});
    auto results = runCampaign(one, suite, warmup_fraction, jobs);
    return std::move(results.front());
}

std::size_t
Campaign::add(std::string label, CoreConfig cfg,
              PrefetcherFactory make_prefetcher,
              std::string prefetcher_id)
{
    entries_.push_back(CampaignEntry{std::move(label), std::move(cfg),
                                     std::move(make_prefetcher),
                                     std::move(prefetcher_id)});
    return entries_.size() - 1;
}

std::vector<SuiteResult>
Campaign::run(unsigned jobs) const
{
    return runCampaign(entries_, suite_, warmupFraction_, jobs);
}

} // namespace fdip
