#include "sim/report.h"

#include <cstdio>
#include <memory>

namespace fdip
{

namespace
{

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};

using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

/** Minimal JSON string escaping (labels are simple identifiers). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

} // namespace

bool
writeSuiteResultsJson(const std::string &path,
                      const std::vector<SuiteResult> &results)
{
    FileHandle f(std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    std::fprintf(f.get(), "{\n  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SuiteResult &r = results[i];
        std::fprintf(f.get(),
                     "    {\"label\": \"%s\", \"geomeanIpc\": %.6f, "
                     "\"meanMpki\": %.4f, \"runs\": [\n",
                     escape(r.label).c_str(), r.geomeanIpc(),
                     r.meanMpki());
        for (std::size_t j = 0; j < r.runs.size(); ++j) {
            const RunResult &run = r.runs[j];
            const SimStats &s = run.stats;
            std::fprintf(
                f.get(),
                "      {\"workload\": \"%s\", \"ipc\": %.6f, "
                "\"mpki\": %.4f, \"starvationPerKi\": %.3f, "
                "\"tagAccessesPerKi\": %.3f, \"l1iMpki\": %.4f, "
                "\"pfcFires\": %llu, \"ghrFixups\": %llu}%s\n",
                escape(run.workload).c_str(), s.ipc(), s.branchMpki(),
                s.starvationPerKi(), s.tagAccessesPerKi(), s.l1iMpki(),
                static_cast<unsigned long long>(s.pfcFires),
                static_cast<unsigned long long>(s.ghrFixups),
                j + 1 < r.runs.size() ? "," : "");
        }
        std::fprintf(f.get(), "    ]}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f.get(), "  ]\n}\n");
    return true;
}

bool
writeSuiteResultsCsv(const std::string &path,
                     const std::vector<SuiteResult> &results)
{
    FileHandle f(std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    std::fprintf(f.get(),
                 "label,workload,ipc,mpki,starvation_per_ki,"
                 "tag_accesses_per_ki,l1i_mpki,pfc_fires,ghr_fixups\n");
    for (const SuiteResult &r : results) {
        for (const RunResult &run : r.runs) {
            const SimStats &s = run.stats;
            std::fprintf(
                f.get(), "%s,%s,%.6f,%.4f,%.3f,%.3f,%.4f,%llu,%llu\n",
                r.label.c_str(), run.workload.c_str(), s.ipc(),
                s.branchMpki(), s.starvationPerKi(),
                s.tagAccessesPerKi(), s.l1iMpki(),
                static_cast<unsigned long long>(s.pfcFires),
                static_cast<unsigned long long>(s.ghrFixups));
        }
    }
    return true;
}

} // namespace fdip
