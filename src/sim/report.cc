#include "sim/report.h"

#include <cstdio>
#include <memory>

#include "core/core.h"
#include "core/cycle_stats.h"
#include "obs/heartbeat.h"

namespace fdip
{

namespace
{

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};

using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

/** Minimal JSON string escaping (labels are simple identifiers). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

/**
 * Fallback stat dump for runs that carry only SimStats (campaign
 * cache hits, and `--campaign` runs generally, never snapshot a live
 * registry): synthesize the "core.*" subtree — all raw counters, the
 * cycle buckets, and the derived metrics — from the counters alone.
 * Subsystem trees (frontend.*, bpu.*, ...) need live components and
 * are necessarily absent here.
 */
std::vector<StatSample>
synthesizeStatDump(const SimStats &s)
{
    StatRegistry reg;
    registerCoreSimStats(reg, s);
    return reg.snapshot();
}

} // namespace

bool
writeSuiteResultsJson(const std::string &path,
                      const std::vector<SuiteResult> &results)
{
    FileHandle f(std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    std::fprintf(f.get(), "{\n  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SuiteResult &r = results[i];
        std::fprintf(f.get(),
                     "    {\"label\": \"%s\", \"geomeanIpc\": %.6f, "
                     "\"meanMpki\": %.4f, \"runs\": [\n",
                     escape(r.label).c_str(), r.geomeanIpc(),
                     r.meanMpki());
        for (std::size_t j = 0; j < r.runs.size(); ++j) {
            const RunResult &run = r.runs[j];
            const SimStats &s = run.stats;
            std::fprintf(
                f.get(),
                "      {\"workload\": \"%s\", \"ipc\": %.6f, "
                "\"mpki\": %.4f, \"starvationPerKi\": %.3f, "
                "\"tagAccessesPerKi\": %.3f, \"l1iMpki\": %.4f, "
                "\"pfcFires\": %llu, \"ghrFixups\": %llu",
                escape(run.workload).c_str(), s.ipc(), s.branchMpki(),
                s.starvationPerKi(), s.tagAccessesPerKi(), s.l1iMpki(),
                static_cast<unsigned long long>(s.pfcFires),
                static_cast<unsigned long long>(s.ghrFixups));
            std::fprintf(f.get(), ", \"cycleBuckets\": {");
            for (std::size_t b = 0; b < kCycleBucketCount; ++b)
                std::fprintf(f.get(), "%s\"%s\": %llu",
                             b == 0 ? "" : ", ", kCycleBucketName[b],
                             static_cast<unsigned long long>(
                                 s.*kCycleBucketField[b]));
            std::fprintf(f.get(), "}");
            if (!run.heartbeats.empty()) {
                std::fprintf(f.get(), ", \"heartbeats\": [");
                for (std::size_t k = 0; k < run.heartbeats.size(); ++k) {
                    std::string hb;
                    appendHeartbeatJson(hb, run.heartbeats[k]);
                    std::fprintf(f.get(), "%s%s",
                                 k == 0 ? "" : ", ", hb.c_str());
                }
                std::fprintf(f.get(), "]");
            }
            std::fprintf(f.get(), "}%s\n",
                         j + 1 < r.runs.size() ? "," : "");
        }
        std::fprintf(f.get(), "    ]}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f.get(), "  ]\n}\n");
    return true;
}

bool
writeSuiteResultsCsv(const std::string &path,
                     const std::vector<SuiteResult> &results)
{
    FileHandle f(std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    // Cycle-accounting columns sit between the counter block and the
    // derived prefetch metrics; their names come from the bucket table
    // ("." -> "_", "cycles_" prefix) so the column set can never drift
    // from the buckets themselves.
    std::fprintf(f.get(),
                 "label,workload,ipc,mpki,starvation_per_ki,"
                 "tag_accesses_per_ki,l1i_mpki,pfc_fires,ghr_fixups,");
    for (std::size_t b = 0; b < kCycleBucketCount; ++b) {
        std::string col = std::string("cycles_") + kCycleBucketName[b];
        for (char &c : col)
            if (c == '.')
                c = '_';
        std::fprintf(f.get(), "%s,", col.c_str());
    }
    std::fprintf(f.get(), "prefetch_accuracy,prefetch_coverage,"
                          "prefetch_redundant_rate\n");
    for (const SuiteResult &r : results) {
        for (const RunResult &run : r.runs) {
            const SimStats &s = run.stats;
            std::fprintf(
                f.get(), "%s,%s,%.6f,%.4f,%.3f,%.3f,%.4f,%llu,%llu,",
                r.label.c_str(), run.workload.c_str(), s.ipc(),
                s.branchMpki(), s.starvationPerKi(),
                s.tagAccessesPerKi(), s.l1iMpki(),
                static_cast<unsigned long long>(s.pfcFires),
                static_cast<unsigned long long>(s.ghrFixups));
            for (std::size_t b = 0; b < kCycleBucketCount; ++b)
                std::fprintf(f.get(), "%llu,",
                             static_cast<unsigned long long>(
                                 s.*kCycleBucketField[b]));
            std::fprintf(f.get(), "%.4f,%.4f,%.4f\n",
                         s.prefetchAccuracy(), s.prefetchCoverage(),
                         s.prefetchRedundantRate());
        }
    }
    return true;
}

bool
writeHeartbeatsJsonl(const std::string &path,
                     const std::vector<SuiteResult> &results)
{
    FileHandle f(std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    for (const SuiteResult &r : results) {
        for (const RunResult &run : r.runs) {
            for (const HeartbeatSample &s : run.heartbeats) {
                std::string hb;
                appendHeartbeatJson(hb, s);
                std::fprintf(f.get(),
                             "{\"label\": \"%s\", \"workload\": \"%s\", "
                             "\"heartbeat\": %s}\n",
                             escape(r.label).c_str(),
                             escape(run.workload).c_str(), hb.c_str());
            }
        }
    }
    return true;
}

bool
writeStatDumpsJson(const std::string &path,
                   const std::vector<SuiteResult> &results)
{
    FileHandle f(std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    std::fprintf(f.get(), "{\n  \"results\": [\n");
    bool first_run = true;
    for (const SuiteResult &r : results) {
        for (const RunResult &run : r.runs) {
            std::fprintf(f.get(),
                         "%s    {\"label\": \"%s\", \"workload\": "
                         "\"%s\", \"stats\": {",
                         first_run ? "" : ",\n", escape(r.label).c_str(),
                         escape(run.workload).c_str());
            first_run = false;
            std::vector<StatSample> synth;
            if (run.statDump.empty())
                synth = synthesizeStatDump(run.stats);
            const std::vector<StatSample> &dump =
                run.statDump.empty() ? synth : run.statDump;
            for (std::size_t i = 0; i < dump.size(); ++i) {
                const StatSample &s = dump[i];
                if (s.kind == StatKind::kCounter)
                    std::fprintf(f.get(), "%s\"%s\": %llu",
                                 i == 0 ? "" : ", ",
                                 escape(s.name).c_str(),
                                 static_cast<unsigned long long>(
                                     s.intValue));
                else
                    std::fprintf(f.get(), "%s\"%s\": %.6f",
                                 i == 0 ? "" : ", ",
                                 escape(s.name).c_str(), s.value);
            }
            std::fprintf(f.get(), "}}");
        }
    }
    std::fprintf(f.get(), "\n  ]\n}\n");
    return true;
}

} // namespace fdip
