#include "sim/campaign_presets.h"

#include "prefetch/factory.h"
#include "util/log.h"

namespace fdip
{

namespace
{

/** Factory adapter for named prefetchers (mirrors bench_common.h). */
PrefetcherFactory
named(const std::string &name)
{
    return [name](const Trace &) { return makePrefetcher(name); };
}

/** Adds one entry with an explicit prefetcher identity. */
void
add(std::vector<CampaignEntry> &out, std::string label, CoreConfig cfg,
    const std::string &prefetcher)
{
    out.push_back(CampaignEntry{std::move(label), std::move(cfg),
                                named(prefetcher), prefetcher});
}

/** Fig. 6a core: prefetchers with and without FDP. */
std::vector<CampaignEntry>
prefetchersCampaign()
{
    std::vector<CampaignEntry> out;
    add(out, "baseline", noFdpConfig(), "none");
    add(out, "NL1", noFdpConfig(), "nl1");
    add(out, "EIP-27KB", noFdpConfig(), "eip-27");
    add(out, "FDP", paperBaselineConfig(), "none");
    add(out, "FDP+NL1", paperBaselineConfig(), "nl1");
    add(out, "FDP+EIP-27KB", paperBaselineConfig(), "eip-27");
    return out;
}

/** Fig. 14 core: the FTQ size sweep. */
std::vector<CampaignEntry>
ftqCampaign()
{
    std::vector<CampaignEntry> out;
    add(out, "ftq2", noFdpConfig(), "none");
    for (unsigned entries : {4u, 8u, 12u, 16u, 24u, 32u}) {
        CoreConfig cfg = paperBaselineConfig();
        cfg.ftqEntries = entries;
        add(out, "ftq-" + std::to_string(entries), cfg, "none");
    }
    return out;
}

/** Fig. 8 core: history-management policies (PFC on). */
std::vector<CampaignEntry>
historyCampaign()
{
    std::vector<CampaignEntry> out;
    add(out, "base", noFdpConfig(), "none");
    for (HistoryScheme scheme :
         {HistoryScheme::kIdeal, HistoryScheme::kThr, HistoryScheme::kGhr0,
          HistoryScheme::kGhr1, HistoryScheme::kGhr2,
          HistoryScheme::kGhr3}) {
        CoreConfig cfg = paperBaselineConfig();
        cfg.historyScheme = scheme;
        add(out, historySchemeName(scheme), cfg, "none");
    }
    return out;
}

/** bench_stall_accounting's sweep: cycle-accounting breakdowns by
 *  prefetcher as the BTB shrinks from 8K to 1K entries. Registered
 *  as a preset so the sharded/resumable campaign runner can produce
 *  the same grid the bench prints. */
std::vector<CampaignEntry>
stallAccountingCampaign()
{
    std::vector<CampaignEntry> out;
    struct Pf
    {
        const char *label;
        const char *name; ///< "none": FDP alone, no L1I prefetcher.
    };
    const Pf pfs[] = {
        {"FDP", "none"},
        {"FDP+NL1", "nl1"},
        {"FDP+EIP-27KB", "eip-27"},
    };
    for (const Pf &pf : pfs) {
        for (unsigned entries : {1024u, 2048u, 4096u, 8192u}) {
            CoreConfig cfg = paperBaselineConfig();
            cfg.bpu.btb.numEntries = entries;
            add(out,
                std::string(pf.label) + "@" + std::to_string(entries),
                cfg, pf.name);
        }
    }
    return out;
}

/** A two-config smoke campaign, small enough for CI kill/resume. */
std::vector<CampaignEntry>
smokeCampaign()
{
    std::vector<CampaignEntry> out;
    add(out, "baseline", noFdpConfig(), "none");
    add(out, "FDP", paperBaselineConfig(), "none");
    return out;
}

} // namespace

std::vector<CampaignPreset>
campaignPresets()
{
    return {
        {"prefetchers",
         "Fig. 6a core: NL1/EIP with and without FDP (6 configs)"},
        {"ftq", "Fig. 14: FTQ size sweep (7 configs)"},
        {"history",
         "Fig. 8: history-management policies, PFC on (7 configs)"},
        {"stall_accounting",
         "cycle accounting by prefetcher x BTB size (12 configs; "
         "bench_stall_accounting's grid)"},
        {"smoke", "baseline vs FDP (2 configs; CI kill/resume smoke)"},
    };
}

std::vector<CampaignEntry>
buildCampaignEntries(const std::string &name)
{
    if (name == "prefetchers")
        return prefetchersCampaign();
    if (name == "ftq")
        return ftqCampaign();
    if (name == "history")
        return historyCampaign();
    if (name == "stall_accounting")
        return stallAccountingCampaign();
    if (name == "smoke")
        return smokeCampaign();

    std::string known;
    for (const CampaignPreset &p : campaignPresets()) {
        if (!known.empty())
            known += ", ";
        known += p.name;
    }
    fdip_fatal("unknown campaign '%s' (valid: %s)", name.c_str(),
               known.c_str());
}

} // namespace fdip
