/**
 * @file
 * The experiment harness: runs one core configuration across a
 * workload suite and aggregates metrics the way the paper does
 * (geometric-mean IPC speedups, arithmetic-mean MPKI).
 */

#ifndef FDIP_SIM_EXPERIMENT_H_
#define FDIP_SIM_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/core.h"
#include "core/core_config.h"
#include "core/sim_stats.h"
#include "obs/heartbeat.h"
#include "obs/stat_registry.h"
#include "obs/tick_profiler.h"
#include "prefetch/prefetcher.h"
#include "trace/suite.h"

namespace fdip
{

/** Builds a prefetcher instance for one trace. */
using PrefetcherFactory =
    std::function<std::unique_ptr<InstPrefetcher>(const Trace &)>;

/** A factory for the null prefetcher. */
PrefetcherFactory noPrefetcher();

/** Result of one (config, workload) simulation. */
struct RunResult
{
    std::string workload;
    SimStats stats;

    /** Heartbeat time series (empty unless cfg.obs.heartbeatInterval
     *  was set; see Core::heartbeats()). */
    std::vector<HeartbeatSample> heartbeats;

    /** Full stat-registry snapshot (empty unless cfg.obs.collectStats
     *  was set). */
    std::vector<StatSample> statDump;

    /** Host tick-phase profile (all-zero unless cfg.obs.profileInterval
     *  was set). Host telemetry only — never architectural. */
    TickProfile hostPhases;
};

/** Result of one configuration across the suite. */
struct SuiteResult
{
    std::string label;
    std::vector<RunResult> runs;

    /** Geometric-mean IPC across workloads. */
    double geomeanIpc() const;
    /** Arithmetic-mean branch MPKI. */
    double meanMpki() const;
    /** Arithmetic-mean starvation cycles per kilo-instruction. */
    double meanStarvationPerKi() const;
    /** Arithmetic-mean L1I tag accesses per kilo-instruction. */
    double meanTagAccessesPerKi() const;

    /** Geomean speedup of this result over @p base (1.0 = equal). */
    double speedupOver(const SuiteResult &base) const;
};

/**
 * Runs one (config, workload) pair: the unit of work shared by the
 * serial and parallel experiment engines. @p cfg must already have had
 * applyHistoryScheme() called; the trace is borrowed read-only, so many
 * concurrent runs may share one decoded trace. Fills host wall-clock
 * telemetry (SimStats::hostWallSeconds) as a side effect.
 */
RunResult runOne(const CoreConfig &cfg, const SuiteEntry &entry,
                 const PrefetcherFactory &make_prefetcher,
                 double warmup_fraction);

/**
 * Runs @p cfg over every trace in @p suite.
 *
 * @param label          display label.
 * @param cfg            core configuration (historyScheme is applied).
 * @param suite          the traces.
 * @param make_prefetcher per-trace prefetcher factory.
 * @param warmup_fraction fraction of each trace treated as warmup.
 */
SuiteResult runSuite(const std::string &label, CoreConfig cfg,
                     const std::vector<SuiteEntry> &suite,
                     const PrefetcherFactory &make_prefetcher,
                     double warmup_fraction = 0.2);

/** Default suite sizing for bench binaries: FDIP_SIM_INSTRS override,
 *  FDIP_SUITE=small override, defaults to @p default_insts / full. */
std::vector<SuiteEntry> benchSuite(std::size_t default_insts = 1000000);

/// @{ Manifest hashing: the content-addressing layer the campaign
/// spool (sim/campaign_store.h) is keyed by. Purely functional over
/// explicit inputs — no clocks, no pointers, no environment — so the
/// same experiment hashes identically on any host, which is what lets
/// independent workers share one spool and lets finished work be
/// skipped byte-verifiably.

/**
 * Canonical text serialization of every *architectural* knob of
 * @p cfg (observability options are excluded by design: they never
 * affect simulated state). One "key=value\n" line per field, in a
 * fixed order, prefixed with a format-version line, so the digest is
 * stable across rebuilds and hosts.
 *
 * When adding a CoreConfig field, add its line here: the
 * sim_campaign_store_test digest-sensitivity tests are the reminder.
 */
std::string canonicalConfigText(const CoreConfig &cfg);

/** FNV-1a 64 digest of canonicalConfigText(). */
std::uint64_t configDigest(const CoreConfig &cfg);

/**
 * FNV-1a 64 digest of a suite entry's full simulation input: the
 * workload name, the program image (base address + every static
 * instruction), and the committed dynamic-instruction stream (raw
 * DynInst records; their 16-byte layout is static_asserted stable
 * with explicit zeroed padding). The seed and instruction count are
 * covered transitively: they determine this content.
 */
std::uint64_t traceDigest(const SuiteEntry &entry);
/// @}

} // namespace fdip

#endif // FDIP_SIM_EXPERIMENT_H_
