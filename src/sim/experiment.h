/**
 * @file
 * The experiment harness: runs one core configuration across a
 * workload suite and aggregates metrics the way the paper does
 * (geometric-mean IPC speedups, arithmetic-mean MPKI).
 */

#ifndef FDIP_SIM_EXPERIMENT_H_
#define FDIP_SIM_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/core.h"
#include "core/core_config.h"
#include "core/sim_stats.h"
#include "obs/heartbeat.h"
#include "obs/stat_registry.h"
#include "prefetch/prefetcher.h"
#include "trace/suite.h"

namespace fdip
{

/** Builds a prefetcher instance for one trace. */
using PrefetcherFactory =
    std::function<std::unique_ptr<InstPrefetcher>(const Trace &)>;

/** A factory for the null prefetcher. */
PrefetcherFactory noPrefetcher();

/** Result of one (config, workload) simulation. */
struct RunResult
{
    std::string workload;
    SimStats stats;

    /** Heartbeat time series (empty unless cfg.obs.heartbeatInterval
     *  was set; see Core::heartbeats()). */
    std::vector<HeartbeatSample> heartbeats;

    /** Full stat-registry snapshot (empty unless cfg.obs.collectStats
     *  was set). */
    std::vector<StatSample> statDump;
};

/** Result of one configuration across the suite. */
struct SuiteResult
{
    std::string label;
    std::vector<RunResult> runs;

    /** Geometric-mean IPC across workloads. */
    double geomeanIpc() const;
    /** Arithmetic-mean branch MPKI. */
    double meanMpki() const;
    /** Arithmetic-mean starvation cycles per kilo-instruction. */
    double meanStarvationPerKi() const;
    /** Arithmetic-mean L1I tag accesses per kilo-instruction. */
    double meanTagAccessesPerKi() const;

    /** Geomean speedup of this result over @p base (1.0 = equal). */
    double speedupOver(const SuiteResult &base) const;
};

/**
 * Runs one (config, workload) pair: the unit of work shared by the
 * serial and parallel experiment engines. @p cfg must already have had
 * applyHistoryScheme() called; the trace is borrowed read-only, so many
 * concurrent runs may share one decoded trace. Fills host wall-clock
 * telemetry (SimStats::hostWallSeconds) as a side effect.
 */
RunResult runOne(const CoreConfig &cfg, const SuiteEntry &entry,
                 const PrefetcherFactory &make_prefetcher,
                 double warmup_fraction);

/**
 * Runs @p cfg over every trace in @p suite.
 *
 * @param label          display label.
 * @param cfg            core configuration (historyScheme is applied).
 * @param suite          the traces.
 * @param make_prefetcher per-trace prefetcher factory.
 * @param warmup_fraction fraction of each trace treated as warmup.
 */
SuiteResult runSuite(const std::string &label, CoreConfig cfg,
                     const std::vector<SuiteEntry> &suite,
                     const PrefetcherFactory &make_prefetcher,
                     double warmup_fraction = 0.2);

/** Default suite sizing for bench binaries: FDIP_SIM_INSTRS override,
 *  FDIP_SUITE=small override, defaults to @p default_insts / full. */
std::vector<SuiteEntry> benchSuite(std::size_t default_insts = 1000000);

} // namespace fdip

#endif // FDIP_SIM_EXPERIMENT_H_
