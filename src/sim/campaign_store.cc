#include "sim/campaign_store.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <signal.h>
#include <unistd.h>

#include "util/atomic_file.h"
#include "util/fnv.h"
#include "util/log.h"
#include "util/sync.h"

namespace fdip
{

namespace
{

/**
 * Name and accessor of one architectural counter. The table is the
 * single source of truth for record serialization, parsing, and the
 * checksum: field order here is architecturalState() order, and the
 * static_assert below forces this table to grow with SimStats.
 */
struct CounterField
{
    const char *name;
    std::uint64_t SimStats::*member;
};

constexpr CounterField kCounterFields[] = {
    {"cycles", &SimStats::cycles},
    {"committedInsts", &SimStats::committedInsts},
    {"condBranches", &SimStats::condBranches},
    {"takenBranches", &SimStats::takenBranches},
    {"indirectBranches", &SimStats::indirectBranches},
    {"returns", &SimStats::returns},
    {"mispredicts", &SimStats::mispredicts},
    {"mispredictsCondDir", &SimStats::mispredictsCondDir},
    {"mispredictsBtbMissTaken", &SimStats::mispredictsBtbMissTaken},
    {"mispredictsTarget", &SimStats::mispredictsTarget},
    {"mispredictsPfcMisfire", &SimStats::mispredictsPfcMisfire},
    {"pfcFires", &SimStats::pfcFires},
    {"pfcCorrect", &SimStats::pfcCorrect},
    {"pfcWrong", &SimStats::pfcWrong},
    {"ghrFixups", &SimStats::ghrFixups},
    {"starvationCycles", &SimStats::starvationCycles},
    {"deliveredInsts", &SimStats::deliveredInsts},
    {"wrongPathDelivered", &SimStats::wrongPathDelivered},
    {"l1iDemandAccesses", &SimStats::l1iDemandAccesses},
    {"l1iDemandMisses", &SimStats::l1iDemandMisses},
    {"l1iTagAccesses", &SimStats::l1iTagAccesses},
    {"prefetchesIssued", &SimStats::prefetchesIssued},
    {"prefetchesRedundant", &SimStats::prefetchesRedundant},
    {"prefetchesUseful", &SimStats::prefetchesUseful},
    {"itlbMisses", &SimStats::itlbMisses},
    {"missFullyExposed", &SimStats::missFullyExposed},
    {"missPartiallyExposed", &SimStats::missPartiallyExposed},
    {"missCovered", &SimStats::missCovered},
    {"btbLookups", &SimStats::btbLookups},
    {"btbHits", &SimStats::btbHits},
    {"cyclesBaseCommitted", &SimStats::cyclesBaseCommitted},
    {"cyclesBackendBackpressure", &SimStats::cyclesBackendBackpressure},
    {"cyclesRecoveryFlushRestart", &SimStats::cyclesRecoveryFlushRestart},
    {"cyclesFetchL1iMiss", &SimStats::cyclesFetchL1iMiss},
    {"cyclesFetchItlbMiss", &SimStats::cyclesFetchItlbMiss},
    {"cyclesFetchFtqEmptyBtbMiss", &SimStats::cyclesFetchFtqEmptyBtbMiss},
    {"cyclesFetchFtqEmptyRedirect", &SimStats::cyclesFetchFtqEmptyRedirect},
    {"cyclesFetchPipeline", &SimStats::cyclesFetchPipeline},
};

static_assert(sizeof(kCounterFields) / sizeof(kCounterFields[0]) ==
                  SimStats::kArchitecturalCounters,
              "kCounterFields and SimStats::architecturalState() "
              "disagree: a counter was added to one but not the other");

/** Minimal JSON string escaping (identifiers and workload names). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

/**
 * Sequential reader over one record line. The spool reads only what
 * this module writes, so the parser is deliberately strict: exact key
 * order, every field required, anything else is corruption.
 */
class RecordReader
{
  public:
    explicit RecordReader(const std::string &text) : text_(text) {}

    void
    ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    lit(char c)
    {
        ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return fail("expected '%c'", c);
    }

    /** Matches `"key":` exactly. */
    bool
    key(const char *name)
    {
        if (!str(&scratch_))
            return false;
        if (scratch_ != name)
            return fail("expected key \"%s\", got \"%s\"", name,
                        scratch_.c_str());
        return lit(':');
    }

    bool
    str(std::string *out)
    {
        if (!lit('"'))
            return false;
        out->clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("truncated escape");
                c = text_[pos_++];
            }
            out->push_back(c);
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // Closing quote.
        return true;
    }

    bool
    u64(std::uint64_t *out)
    {
        ws();
        const std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        if (pos_ == start)
            return fail("expected unsigned integer");
        errno = 0;
        char *end = nullptr;
        const std::string digits = text_.substr(start, pos_ - start);
        *out = std::strtoull(digits.c_str(), &end, 10);
        if (errno != 0 || end == nullptr || *end != '\0')
            return fail("integer out of range");
        return true;
    }

    bool
    f64(double *out)
    {
        ws();
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::strchr("+-.eE0123456789", text_[end]) != nullptr))
            ++end;
        if (end == pos_)
            return fail("expected number");
        const std::string digits = text_.substr(pos_, end - pos_);
        char *stop = nullptr;
        *out = std::strtod(digits.c_str(), &stop);
        if (stop == nullptr || *stop != '\0')
            return fail("malformed number");
        pos_ = end;
        return true;
    }

    bool
    atEnd()
    {
        ws();
        return pos_ == text_.size();
    }

    __attribute__((format(printf, 2, 3))) bool
    fail(const char *fmt, ...)
    {
        if (error_.empty()) {
            va_list args;
            va_start(args, fmt);
            char buf[256];
            std::vsnprintf(buf, sizeof(buf), fmt, args);
            va_end(args);
            error_ = buf;
        }
        return false;
    }

    const std::string &error() const { return error_; }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
    std::string scratch_;
    std::string error_;
};

/** True when @p name is exactly 16 lowercase hex characters. */
bool
isHexKey(const std::string &name)
{
    std::uint64_t unused = 0;
    return fromHex16(name, &unused);
}

/** The `<spool>/<hash>.<suffix>` path. */
std::string
spoolPath(const std::string &dir, const std::string &hash,
          const char *suffix)
{
    return dir + "/" + hash + "." + suffix;
}

/** Claim-file contents identifying this process. */
std::string
claimText()
{
    char host[256] = {0};
    if (::gethostname(host, sizeof(host) - 1) != 0)
        std::strcpy(host, "unknown");
    return std::string("fdip-claim-v1\npid=") +
           std::to_string(static_cast<long>(::getpid())) + "\nhost=" +
           host + "\n";
}

/** Extracts `key=value` from claim text; empty when missing. */
std::string
claimField(const std::string &text, const std::string &field)
{
    const std::string needle = field + "=";
    std::size_t pos = text.find(needle);
    while (pos != std::string::npos && pos != 0 &&
           text[pos - 1] != '\n') {
        pos = text.find(needle, pos + 1);
    }
    if (pos == std::string::npos)
        return {};
    const std::size_t start = pos + needle.size();
    const std::size_t end = text.find('\n', start);
    return text.substr(start, end == std::string::npos
                                  ? std::string::npos
                                  : end - start);
}

/** True when @p pid names a live process on this host. */
bool
processAlive(long pid)
{
    if (pid <= 0)
        return false;
    // Signal 0 probes existence; EPERM still means "alive".
    return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

/** Moves a corrupt spool file aside so it is never trusted again but
 *  stays available for postmortem. */
void
quarantineFile(const std::string &dir, const std::string &name,
               const std::string &reason, SpoolScan *scan)
{
    const std::string from = dir + "/" + name;
    const std::string to = from + ".quarantined";
    std::string err;
    if (!renameFile(from, to, &err)) {
        // Removal as a fallback: an unreadable corrupt record must
        // not keep poisoning every future scan.
        removeFile(from);
    }
    fdip_warn("campaign spool: quarantined '%s': %s", name.c_str(),
              reason.c_str());
    scan->quarantined.push_back(name);
}

/** Loads + verifies one record file; quarantines on any defect. */
void
loadRecordFile(const std::string &dir, const std::string &name,
               SpoolScan *scan)
{
    const std::string stem = name.substr(0, name.size() - 5);
    if (!isHexKey(stem)) {
        quarantineFile(dir, name, "record name is not a manifest hash",
                       scan);
        return;
    }
    std::string text;
    std::string err;
    if (!readFileToString(dir + "/" + name, &text, &err)) {
        quarantineFile(dir, name, err, scan);
        return;
    }
    CampaignRecord record;
    if (!parseCampaignRecord(text, &record, &err)) {
        quarantineFile(dir, name, err, scan);
        return;
    }
    if (record.hash != stem) {
        quarantineFile(dir, name,
                       "embedded hash '" + record.hash +
                           "' does not match the file key (duplicate "
                           "or misplaced record)",
                       scan);
        return;
    }
    scan->records.emplace(record.hash, std::move(record));
}

} // namespace

std::uint64_t
architecturalChecksum(const SimStats &stats)
{
    std::uint64_t h = fnv1a64("fdip-arch-v1\n");
    for (const CounterField &f : kCounterFields)
        h = fnv1aMix(stats.*f.member, h);
    return h;
}

std::string
campaignRecordJson(const CampaignRecord &record)
{
    std::string out = "{\"fdipCampaignRecord\": " +
                      std::to_string(kCampaignRecordVersion);
    out += ", \"hash\": \"" + escape(record.hash) + "\"";
    out += ", \"label\": \"" + escape(record.label) + "\"";
    out += ", \"workload\": \"" + escape(record.workload) + "\"";
    out += ", \"prefetcher\": \"" + escape(record.prefetcher) + "\"";
    out += ", \"configDigest\": \"" + escape(record.configDigestHex) +
           "\"";
    char wall[64];
    std::snprintf(wall, sizeof(wall), "%.9g",
                  record.stats.hostWallSeconds);
    out += std::string(", \"hostWallSeconds\": ") + wall;
    out += ", \"statsChecksum\": \"" +
           toHex16(architecturalChecksum(record.stats)) + "\"";
    out += ", \"stats\": {";
    bool first = true;
    for (const CounterField &f : kCounterFields) {
        if (!first)
            out += ", ";
        first = false;
        out += std::string("\"") + f.name +
               "\": " + std::to_string(record.stats.*f.member);
    }
    out += "}}\n";
    return out;
}

bool
parseCampaignRecord(const std::string &line, CampaignRecord *record,
                    std::string *error)
{
    const auto failWith = [error](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };

    RecordReader r(line);
    std::uint64_t version = 0;
    if (!(r.lit('{') && r.key("fdipCampaignRecord") && r.u64(&version)))
        return failWith("not a campaign record: " + r.error());
    if (version != static_cast<std::uint64_t>(kCampaignRecordVersion)) {
        return failWith("unsupported record version " +
                        std::to_string(version) + " (this build reads v" +
                        std::to_string(kCampaignRecordVersion) + ")");
    }

    CampaignRecord rec;
    std::string checksum_hex;
    const bool header_ok =
        r.lit(',') && r.key("hash") && r.str(&rec.hash) && r.lit(',') &&
        r.key("label") && r.str(&rec.label) && r.lit(',') &&
        r.key("workload") && r.str(&rec.workload) && r.lit(',') &&
        r.key("prefetcher") && r.str(&rec.prefetcher) && r.lit(',') &&
        r.key("configDigest") && r.str(&rec.configDigestHex) &&
        r.lit(',') && r.key("hostWallSeconds") &&
        r.f64(&rec.stats.hostWallSeconds) && r.lit(',') &&
        r.key("statsChecksum") && r.str(&checksum_hex) && r.lit(',') &&
        r.key("stats") && r.lit('{');
    if (!header_ok)
        return failWith("malformed record: " + r.error());

    for (std::size_t i = 0; i < SimStats::kArchitecturalCounters; ++i) {
        if (i > 0 && !r.lit(','))
            return failWith("truncated counters: " + r.error());
        if (!r.key(kCounterFields[i].name) ||
            !r.u64(&(rec.stats.*kCounterFields[i].member)))
            return failWith("malformed counter: " + r.error());
    }
    if (!(r.lit('}') && r.lit('}') && r.atEnd()))
        return failWith("trailing garbage or truncation: " + r.error());

    if (!isHexKey(rec.hash))
        return failWith("malformed manifest hash '" + rec.hash + "'");
    std::uint64_t declared = 0;
    if (!fromHex16(checksum_hex, &declared) ||
        declared != architecturalChecksum(rec.stats)) {
        return failWith(
            "architectural-counter checksum mismatch (declared " +
            checksum_hex + ", computed " +
            toHex16(architecturalChecksum(rec.stats)) + ")");
    }
    *record = std::move(rec);
    return true;
}

std::vector<ManifestEntry>
buildManifest(const std::vector<CampaignEntry> &entries,
              const std::vector<SuiteEntry> &suite,
              double warmup_fraction)
{
    // Hash the configs exactly as the engine runs them: resolved.
    std::vector<std::string> config_texts;
    std::vector<std::string> config_digests;
    config_texts.reserve(entries.size());
    for (const CampaignEntry &e : entries) {
        CoreConfig cfg = e.cfg;
        cfg.applyHistoryScheme();
        config_texts.push_back(canonicalConfigText(cfg));
        config_digests.push_back(toHex16(fnv1a64(config_texts.back())));
    }

    std::vector<std::uint64_t> trace_digests;
    trace_digests.reserve(suite.size());
    for (const SuiteEntry &w : suite)
        trace_digests.push_back(traceDigest(w));

    char warmup[64];
    std::snprintf(warmup, sizeof(warmup), "%.17g", warmup_fraction);

    std::vector<ManifestEntry> manifest;
    manifest.reserve(entries.size() * suite.size());
    for (std::size_t c = 0; c < entries.size(); ++c) {
        const std::string &id = entries[c].prefetcherId.empty()
                                    ? entries[c].label
                                    : entries[c].prefetcherId;
        for (std::size_t w = 0; w < suite.size(); ++w) {
            std::uint64_t h = fnv1a64("fdip-manifest-v1\n");
            h = fnv1a64(config_texts[c], h);
            h = fnv1a64("prefetcher=", h);
            h = fnv1a64(id, h);
            h = fnv1a64("\nworkload=", h);
            h = fnv1a64(suite[w].name, h);
            h = fnv1a64("\nwarmup=", h);
            h = fnv1a64(warmup, h);
            h = fnv1a64("\ntrace=", h);
            h = fnv1aMix(trace_digests[w], h);
            ManifestEntry m;
            m.entryIdx = c;
            m.workloadIdx = w;
            m.hash = toHex16(h);
            m.configDigestHex = config_digests[c];
            m.prefetcherId = id;
            manifest.push_back(std::move(m));
        }
    }
    return manifest;
}

SpoolScan
scanSpool(const std::string &spool_dir)
{
    SpoolScan scan;
    for (const std::string &name : listDirectory(spool_dir)) {
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0) {
            loadRecordFile(spool_dir, name, &scan);
        }
    }
    return scan;
}

std::vector<SuiteResult>
runCampaignSpooled(const std::vector<CampaignEntry> &entries,
                   const std::vector<SuiteEntry> &suite,
                   const SpoolOptions &options, SpoolSummary *summary_out)
{
    const std::string dir = openSpool(options.spoolDir);
    const std::vector<ManifestEntry> manifest =
        buildManifest(entries, suite, options.warmupFraction);
    const std::size_t workloads = suite.size();

    SpoolSummary summary;
    summary.totalRuns = manifest.size();

    SpoolScan scan = scanSpool(dir);
    summary.quarantined = scan.quarantined.size();

    // Release claims whose record already exists (crash between
    // publish and claim removal) and — on resume — claims and temp
    // files owned by dead processes of this host.
    for (const std::string &name : listDirectory(dir)) {
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".claim") == 0) {
            const std::string stem = name.substr(0, name.size() - 6);
            if (scan.records.count(stem) != 0) {
                removeFile(dir + "/" + name);
                continue;
            }
            if (!options.reclaimDeadClaims)
                continue;
            std::string text;
            if (!readFileToString(dir + "/" + name, &text))
                continue;
            const long pid = std::atol(claimField(text, "pid").c_str());
            const std::string host = claimField(text, "host");
            char ourhost[256] = {0};
            if (::gethostname(ourhost, sizeof(ourhost) - 1) != 0)
                ourhost[0] = '\0';
            if (host == ourhost && !processAlive(pid)) {
                removeFile(dir + "/" + name);
                ++summary.reclaimed;
                fdip_inform("campaign: reclaimed stale claim %s "
                            "(dead pid %ld)",
                            stem.c_str(), pid);
            }
        } else if (options.reclaimDeadClaims &&
                   name.find(".tmp.") != std::string::npos) {
            // Orphaned atomic-write temp file: `<key>.tmp.<pid>`.
            const std::string pid_part =
                name.substr(name.rfind('.') + 1);
            const long pid = std::atol(pid_part.c_str());
            if (!processAlive(pid))
                removeFile(dir + "/" + name);
        }
    }

    // Worker-side counters: touched concurrently from the pool.
    Atomic<std::size_t> simulated{0};
    Atomic<std::size_t> claimed_elsewhere{0};

    CampaignHooks hooks;
    hooks.claimRun = [&](std::size_t c, std::size_t w) {
        const ManifestEntry &m = manifest[c * workloads + w];
        if (scan.records.count(m.hash) != 0)
            return false; // Cache hit; filled below.
        std::string err;
        switch (createFileExclusive(spoolPath(dir, m.hash, "claim"),
                                    claimText(), &err)) {
        case ExclusiveCreate::kCreated:
            // Claims are removed only *after* the record is published,
            // so a sibling that finished since our scan leaves the
            // record behind with no claim — and we just won a claim
            // for work that is already done. Holding the claim makes
            // this check race-free: no publication can be in flight.
            if (fileExists(spoolPath(dir, m.hash, "json"))) {
                removeFile(spoolPath(dir, m.hash, "claim"));
                return false; // Late cache hit; filled below.
            }
            simulated.fetchAdd(1, std::memory_order_relaxed);
            if (options.onSimulate)
                options.onSimulate(c, w);
            return true;
        case ExclusiveCreate::kExists:
            claimed_elsewhere.fetchAdd(1, std::memory_order_relaxed);
            return false;
        case ExclusiveCreate::kError:
        default:
            fdip_warn("campaign: cannot claim %s: %s", m.hash.c_str(),
                      err.c_str());
            claimed_elsewhere.fetchAdd(1, std::memory_order_relaxed);
            return false;
        }
    };
    hooks.onRunComplete = [&](std::size_t c, std::size_t w,
                              const RunResult &run) {
        const ManifestEntry &m = manifest[c * workloads + w];
        CampaignRecord record;
        record.hash = m.hash;
        record.label = entries[c].label;
        record.workload = run.workload;
        record.prefetcher = m.prefetcherId;
        record.configDigestHex = m.configDigestHex;
        record.stats = run.stats;
        std::string err;
        if (!writeFileAtomic(spoolPath(dir, m.hash, "json"),
                             campaignRecordJson(record), &err)) {
            fdip_warn("campaign: cannot persist record %s: %s",
                      m.hash.c_str(), err.c_str());
            return;
        }
        removeFile(spoolPath(dir, m.hash, "claim"));
    };

    std::vector<SuiteResult> results = runCampaignHooked(
        entries, suite, options.warmupFraction, options.jobs, hooks);

    summary.simulated = simulated.load(std::memory_order_relaxed);
    summary.claimedElsewhere =
        claimed_elsewhere.load(std::memory_order_relaxed);

    // Fill every slot the engine skipped: from the initial scan, or
    // from a late re-read (a sibling process may have published the
    // record while we were draining).
    summary.complete = true;
    for (const ManifestEntry &m : manifest) {
        RunResult &slot = results[m.entryIdx].runs[m.workloadIdx];
        if (!slot.workload.empty())
            continue; // Simulated by this process.
        auto it = scan.records.find(m.hash);
        if (it == scan.records.end()) {
            SpoolScan late;
            const std::string name = m.hash + ".json";
            if (fileExists(dir + "/" + name))
                loadRecordFile(dir, name, &late);
            summary.quarantined += late.quarantined.size();
            if (late.records.count(m.hash) != 0) {
                it = scan.records
                         .emplace(m.hash,
                                  std::move(late.records[m.hash]))
                         .first;
            }
        }
        if (it == scan.records.end()) {
            summary.complete = false;
            slot.workload = suite[m.workloadIdx].name;
            continue;
        }
        slot.workload = it->second.workload;
        slot.stats = it->second.stats;
        ++summary.cacheHits;
    }

    if (summary_out != nullptr)
        *summary_out = summary;
    return results;
}

bool
mergeCampaignSpool(const std::vector<CampaignEntry> &entries,
                   const std::vector<SuiteEntry> &suite,
                   const std::string &spool_dir, double warmup_fraction,
                   std::vector<SuiteResult> *results,
                   SpoolSummary *summary_out, std::string *error)
{
    const std::string dir = openSpool(spool_dir);
    const std::vector<ManifestEntry> manifest =
        buildManifest(entries, suite, warmup_fraction);

    SpoolSummary summary;
    summary.totalRuns = manifest.size();
    SpoolScan scan = scanSpool(dir);
    summary.quarantined = scan.quarantined.size();

    results->assign(entries.size(), SuiteResult{});
    for (std::size_t c = 0; c < entries.size(); ++c) {
        (*results)[c].label = entries[c].label;
        (*results)[c].runs.resize(suite.size());
    }

    summary.complete = true;
    for (const ManifestEntry &m : manifest) {
        const auto it = scan.records.find(m.hash);
        if (it == scan.records.end()) {
            summary.complete = false;
            if (error != nullptr && error->empty()) {
                *error = "no verified record for manifest entry " +
                         m.hash + " (" + entries[m.entryIdx].label +
                         " x " + suite[m.workloadIdx].name + ")";
            }
            continue;
        }
        RunResult &slot = (*results)[m.entryIdx].runs[m.workloadIdx];
        slot.workload = it->second.workload;
        slot.stats = it->second.stats;
        ++summary.cacheHits;
    }
    if (summary_out != nullptr)
        *summary_out = summary;
    return summary.complete;
}

std::string
openSpool(const std::string &dir)
{
    std::string err;
    if (dir.empty())
        fdip_fatal("campaign spool: no spool directory given "
                   "(--spool PATH or FDIP_SPOOL)");
    if (!ensureDirectory(dir, &err))
        fdip_fatal("campaign spool: unusable spool directory: %s",
                   err.c_str());
    const std::string probe =
        dir + "/.fdip-spool-probe." +
        std::to_string(static_cast<long>(::getpid()));
    if (!writeFileAtomic(probe, "probe\n", &err))
        fdip_fatal("campaign spool: spool directory '%s' is not "
                   "writable: %s",
                   dir.c_str(), err.c_str());
    removeFile(probe);
    return dir;
}

std::string
spoolFromEnv()
{
    // Coordinating-thread opt-in, read before any worker exists
    // (check_determinism.py allowlists this file for getenv).
    const char *v = std::getenv("FDIP_SPOOL"); // NOLINT(concurrency-mt-unsafe)
    return v == nullptr ? std::string() : std::string(v);
}

} // namespace fdip
