/**
 * @file
 * Exact per-field storage schemas.
 *
 * A StorageSchema is a list of {field, width_bits, count} descriptors
 * declared by every storage-bearing structure (predictor tables, BTB
 * levels, queues, TLBs, cache arrays incl. replacement state). The
 * budget layer (check/budget.h) sums these descriptors exactly instead
 * of multiplying nominal size labels, and the certifier
 * (check/certify.h) serializes them into the machine-readable budget
 * certificate. The contract:
 *
 *  - a structure's storageBits() MUST equal storageSchema().totalBits()
 *    (cross-checked in tests/check_schema_test.cc);
 *  - every field is real modeled state at its exact width — no
 *    "approximately N KB" entries;
 *  - simulator bookkeeping that models no hardware (oracle trace
 *    indices, shadow copies, debug mirrors) is NOT listed.
 *
 * Header-only so structure headers in any module can declare schemas
 * without a link-time dependency on fdip_check.
 */

#ifndef FDIP_CHECK_SCHEMA_H_
#define FDIP_CHECK_SCHEMA_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fdip
{

/**
 * Modeled virtual-address width. Every stored target, tag base, or PC
 * field in a schema is charged at this width (check/budget.h
 * static_asserts that its kModelAddrBits agrees).
 */
inline constexpr unsigned kSchemaAddrBits = 48;

/** One field of a storage schema: @c count elements of @c widthBits. */
struct SchemaField
{
    std::string field;
    std::uint64_t widthBits = 0;
    std::uint64_t count = 0;

    std::uint64_t bits() const { return widthBits * count; }
};

/**
 * An exact per-field storage declaration for one structure.
 */
class StorageSchema
{
  public:
    StorageSchema() = default;
    explicit StorageSchema(std::string structure)
        : structure_(std::move(structure))
    {
    }

    /** Appends a field; returns *this so declarations chain. */
    StorageSchema &
    add(std::string field, std::uint64_t width_bits, std::uint64_t count = 1)
    {
        fields_.push_back({std::move(field), width_bits, count});
        return *this;
    }

    const std::string &structure() const { return structure_; }
    const std::vector<SchemaField> &fields() const { return fields_; }
    bool empty() const { return fields_.empty(); }

    /** Exact sum over all fields (the structure's storage cost). */
    std::uint64_t
    totalBits() const
    {
        std::uint64_t total = 0;
        for (const auto &f : fields_)
            total += f.bits();
        return total;
    }

    /** Human-readable one-line-per-field rendering (debugging aid). */
    std::string
    toString() const
    {
        std::string out = structure_ + ": " +
                          std::to_string(totalBits()) + " bits\n";
        for (const auto &f : fields_) {
            out += "  " + f.field + ": " + std::to_string(f.widthBits) +
                   "b x " + std::to_string(f.count) + " = " +
                   std::to_string(f.bits()) + " bits\n";
        }
        return out;
    }

  private:
    std::string structure_;
    std::vector<SchemaField> fields_;
};

} // namespace fdip

#endif // FDIP_CHECK_SCHEMA_H_
