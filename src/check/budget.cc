#include "check/budget.h"

#include "bpu/bpu.h"
#include "cache/cache.h"
#include "prefetch/prefetcher.h"
#include "util/log.h"

namespace fdip
{

std::uint64_t
BudgetReport::totalBits() const
{
    std::uint64_t total = 0;
    for (const auto &item : items_)
        total += item.bits;
    return total;
}

bool
BudgetReport::ok() const
{
    for (const auto &item : items_) {
        if (item.overLimit())
            return false;
    }
    return true;
}

std::vector<std::string>
BudgetReport::violations() const
{
    std::vector<std::string> names;
    for (const auto &item : items_) {
        if (item.overLimit())
            names.push_back(item.name);
    }
    return names;
}

std::string
BudgetReport::toString() const
{
    std::string out =
        log_detail::format("BudgetReport[%s] %s\n", title_.c_str(),
                           ok() ? "OK" : "OVER BUDGET");
    for (const auto &item : items_) {
        out += log_detail::format(
            "  %-24s %12llu bits (%9.1f KB)", item.name.c_str(),
            static_cast<unsigned long long>(item.bits),
            static_cast<double>(item.bits) / 8.0 / 1024.0);
        if (item.limitBits != 0) {
            out += log_detail::format(
                "  limit %12llu bits  %s",
                static_cast<unsigned long long>(item.limitBits),
                item.overLimit() ? "OVER" : "ok");
        }
        out += '\n';
    }
    out += log_detail::format(
        "  %-24s %12llu bits (%9.1f KB)\n", "total",
        static_cast<unsigned long long>(totalBits()),
        static_cast<double>(totalBits()) / 8.0 / 1024.0);
    return out;
}

namespace
{

/**
 * Accounts the BPU structures. Instantiates a Bpu so each structure
 * reports its own storageBits() — the same accounting the simulator
 * itself runs with, not a parallel formula that can drift.
 */
void
addBpuItems(BudgetReport &r, const BpuConfig &cfg,
            const StorageLimits &limits)
{
    const Bpu bpu(cfg);

    r.add("BTB", btbStorageBits(cfg.btb), limits.btbBits);
    if (cfg.btbHierarchy.enabled) {
        // The L1 filter BTB rides inside the main BTB's budget
        // envelope (it is a subset cache of the same entries).
        r.add("L1-BTB",
              btbStorageBits(cfg.btbHierarchy.l1Entries,
                             cfg.btb.bytesPerEntry),
              limits.btbBits);
    }

    // Direction/indirect predictors are reported informationally: the
    // paper labels TAGE by nominal size class (9/18/36 KB) while the
    // modeled tables cost more exactly — see ROADMAP "exact bit
    // accounting" for what is still nominal.
    r.add("direction predictor", bpu.directionStorageBits());
    r.add("ITTAGE", bpu.indirectStorageBits());
    r.add("history", bpu.history().storageBits());
    r.add("RAS", rasStorageBits(cfg.rasDepth), limits.rasBits);
}

} // namespace

BudgetReport
coreStorageReport(const CoreConfig &cfg, const StorageLimits &limits)
{
    BudgetReport r("core");

    // The FDP addition itself: the architectural FTQ (Table III).
    r.add("FTQ(arch)", ftqArchStorageBits(cfg.ftqEntries), limits.ftqBits);

    addBpuItems(r, cfg.bpu, limits);

    // Caches are informational: iso-storage comparisons hold the
    // memory hierarchy fixed rather than budgeting it.
    r.add("L1I", Cache::storageBitsFor(cfg.l1i));
    r.add("L1D", Cache::storageBitsFor(cfg.mem.l1d));
    r.add("L2", Cache::storageBitsFor(cfg.mem.l2));
    r.add("LLC", Cache::storageBitsFor(cfg.mem.llc));
    if (cfg.usePrefetchBuffer) {
        r.add("prefetch buffer",
              std::uint64_t{cfg.prefetchBufferLines} * kCacheLineBytes * 8);
    }

    return r;
}

BudgetReport
coreStorageReport(const CoreConfig &cfg, const InstPrefetcher &prefetcher,
                  const StorageLimits &limits)
{
    BudgetReport r = coreStorageReport(cfg, limits);
    r.add(log_detail::format("prefetcher(%s)", prefetcher.name()),
          prefetcher.storageBits(), limits.prefetcherBits);
    return r;
}

BudgetReport
checkNamedConfigs()
{
    {
        BudgetReport r = coreStorageReport(noFdpConfig());
        if (!r.ok())
            return r;
    }
    return coreStorageReport(paperBaselineConfig());
}

} // namespace fdip
