#include "check/budget.h"

#include "bpu/bpu.h"
#include "cache/cache.h"
#include "prefetch/prefetcher.h"
#include "util/log.h"

namespace fdip
{

std::uint64_t
BudgetReport::totalBits() const
{
    std::uint64_t total = 0;
    for (const auto &item : items_)
        total += item.bits;
    return total;
}

bool
BudgetReport::ok() const
{
    for (const auto &item : items_) {
        if (item.overLimit())
            return false;
    }
    return true;
}

std::vector<std::string>
BudgetReport::violations() const
{
    std::vector<std::string> names;
    for (const auto &item : items_) {
        if (item.overLimit())
            names.push_back(item.name);
    }
    return names;
}

std::string
BudgetReport::toString() const
{
    std::string out =
        log_detail::format("BudgetReport[%s] %s\n", title_.c_str(),
                           ok() ? "OK" : "OVER BUDGET");
    for (const auto &item : items_) {
        out += log_detail::format(
            "  %-24s %12llu bits (%9.1f KB)", item.name.c_str(),
            static_cast<unsigned long long>(item.bits),
            static_cast<double>(item.bits) / 8.0 / 1024.0);
        if (item.limitBits != 0) {
            out += log_detail::format(
                "  limit %12llu bits  %s",
                static_cast<unsigned long long>(item.limitBits),
                item.overLimit() ? "OVER" : "ok");
        }
        out += '\n';
    }
    out += log_detail::format(
        "  %-24s %12llu bits (%9.1f KB)\n", "total",
        static_cast<unsigned long long>(totalBits()),
        static_cast<double>(totalBits()) / 8.0 / 1024.0);
    return out;
}

namespace
{

/**
 * Accounts the BPU structures. Instantiates a Bpu so each structure
 * reports its own StorageSchema — the same accounting the simulator
 * itself runs with, not a parallel formula that can drift. Every item
 * is an exact per-field schema sum.
 */
void
addBpuItems(BudgetReport &r, const BpuConfig &cfg,
            const StorageLimits &limits)
{
    const Bpu bpu(cfg);

    r.add(bpu.btb().storageSchema("BTB"), limits.btbBits);
    if (bpu.btbHierarchy() != nullptr) {
        // The L1 filter BTB has its own budget line: it adds real
        // storage on top of the main BTB's 56 KB envelope.
        r.add(bpu.btbHierarchy()->l1().storageSchema("L1-BTB"),
              limits.l1BtbBits);
    }

    // Direction/indirect predictors are informational (the paper holds
    // them fixed across compared points) but exact: each instantiated
    // component declares its per-field schema, side state included.
    for (auto &schema : bpu.directionStorageSchemas())
        r.add(std::move(schema));
    r.add(bpu.indirectStorageSchema());
    r.add(bpu.history().storageSchema());
    r.add(bpu.ras().storageSchema(), limits.rasBits);
}

} // namespace

BudgetReport
coreStorageReport(const CoreConfig &cfg, const StorageLimits &limits)
{
    BudgetReport r("core");

    // The FDP addition itself: the architectural FTQ (Table III).
    r.add("FTQ(arch)", Ftq(cfg.ftqEntries).storageSchema(),
          limits.ftqBits);

    addBpuItems(r, cfg.bpu, limits);

    // Frontend queues and translation state are informational but
    // exact: they are identical across compared configurations.
    r.add(decodeQueueStorageSchema(cfg.decodeQueueEntries));
    r.add(itlbStorageSchema(cfg.itlbEntries));

    // Caches are informational: iso-storage comparisons hold the
    // memory hierarchy fixed rather than budgeting it. Schemas charge
    // data, tags, valid bits, and replacement state exactly.
    r.add("L1I", Cache::storageSchemaFor(cfg.l1i));
    r.add("L1D", Cache::storageSchemaFor(cfg.mem.l1d));
    r.add("L2", Cache::storageSchemaFor(cfg.mem.l2));
    r.add("LLC", Cache::storageSchemaFor(cfg.mem.llc));
    if (cfg.usePrefetchBuffer) {
        r.add("prefetch buffer",
              Cache::storageSchemaFor(
                  prefetchBufferConfig(cfg.prefetchBufferLines)));
    }

    return r;
}

BudgetReport
coreStorageReport(const CoreConfig &cfg, const InstPrefetcher &prefetcher,
                  const StorageLimits &limits)
{
    BudgetReport r = coreStorageReport(cfg, limits);
    r.add(log_detail::format("prefetcher(%s)", prefetcher.name()),
          prefetcher.storageBits(), limits.prefetcherBits);
    return r;
}

BudgetReport
checkNamedConfigs()
{
    {
        BudgetReport r = coreStorageReport(noFdpConfig());
        if (!r.ok())
            return r;
    }
    {
        BudgetReport r = coreStorageReport(twoLevelBtbConfig());
        if (!r.ok())
            return r;
    }
    return coreStorageReport(paperBaselineConfig());
}

} // namespace fdip
