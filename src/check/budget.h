/**
 * @file
 * Iso-storage budget accounting (the paper's hardware-legality
 * contract).
 *
 * The paper's central claim — FDP + THR + PFC beats the IPC-1 winners
 * with 195 *bytes* of new hardware against their 128KB metadata
 * budgets — is only meaningful if every compared configuration is
 * storage-accounted exactly. This module makes those budgets
 * machine-checked:
 *
 *  - constexpr accounting functions + static_asserts pin the Table III
 *    / Table IV / Section VI-D costs at compile time, so the named
 *    configurations in core_config.h cannot silently drift over their
 *    paper budgets;
 *  - StorageBudget / BudgetReport perform the same accounting at
 *    runtime for arbitrary configurations (experiment sweeps, CLI
 *    configs), flagging every item over its limit.
 *
 * Conventions: all quantities are in *bits*; a limit of 0 means
 * "informational" (reported, never enforced). Addresses cost
 * kModelAddrBits (48-bit VAs, util/types.h).
 */

#ifndef FDIP_CHECK_BUDGET_H_
#define FDIP_CHECK_BUDGET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bpu/btb.h"
#include "bpu/ittage.h"
#include "bpu/ras.h"
#include "bpu/tage.h"
#include "check/schema.h"
#include "core/backend.h"
#include "core/core_config.h"
#include "core/ftq.h"
#include "util/bits.h"

namespace fdip
{

class InstPrefetcher;

/** Modeled address width (48-bit virtual addresses). */
inline constexpr unsigned kModelAddrBits = 48;
static_assert(kModelAddrBits == kSchemaAddrBits,
              "budget accounting and schemas must share the address width");

/// @{ Paper storage budgets.
/** Table III: the FTQ's architectural cost — 24 x 65 bits = 195 B. */
inline constexpr std::uint64_t kPaperFtqBudgetBits = 195 * 8;
/** Section VI-D: 8K-entry BTB at ~7 B per branch = 56 KB. */
inline constexpr std::uint64_t kPaperBtbBudgetBits = 8192ull * 7 * 8;
/** L1 filter BTB of the optional two-level hierarchy: 1K entries at
 *  the same ~7 B per branch = 7 KB, budgeted on its own line rather
 *  than inside the main BTB's envelope. */
inline constexpr std::uint64_t kPaperL1BtbFilterBudgetBits =
    1024ull * 7 * 8;
/** IPC-1 rules (Table I): 128 KB of prefetcher metadata. */
inline constexpr std::uint64_t kIpc1PrefetcherBudgetBits =
    128ull * 1024 * 8;
/** Table IV RAS: 32 x 48-bit return addresses (+ top pointer). */
inline constexpr std::uint64_t kPaperRasBudgetBits = 32ull * 48 + 5;
/// @}

/// @{ constexpr accounting (compile-time legality path).

/** Architectural FTQ cost of @p entries Table III entries. */
constexpr std::uint64_t
ftqArchStorageBits(unsigned entries)
{
    return std::uint64_t{entries} * FtqEntry::kArchBitsPerEntry;
}

/** Modeled BTB cost (entries x per-entry bytes, Section VI-D). */
constexpr std::uint64_t
btbStorageBits(unsigned num_entries, unsigned bytes_per_entry)
{
    return std::uint64_t{num_entries} * bytes_per_entry * 8;
}

constexpr std::uint64_t
btbStorageBits(const BtbConfig &cfg)
{
    return btbStorageBits(cfg.numEntries, cfg.bytesPerEntry);
}

/** RAS cost: @p depth return addresses plus the top pointer. */
constexpr std::uint64_t
rasStorageBits(unsigned depth)
{
    return rasStorageBitsFor(depth);
}

/** 4KB pages: low 12 address bits never enter the ITLB. */
inline constexpr unsigned kPageOffsetBits = 12;

/** One ITLB entry: VPN tag + PPN + valid (36 + 36 + 1 = 73). */
constexpr std::uint64_t
itlbEntryBits()
{
    return 2ull * (kModelAddrBits - kPageOffsetBits) + 1;
}

/**
 * Exact ITLB cost: @p entries fully-associative translation entries
 * plus a per-entry LRU rank. (The Cache instance that *times* the ITLB
 * uses 4KB lines as a modeling device; a TLB stores translations, not
 * page data, so the budget charges translation entries.)
 */
constexpr std::uint64_t
itlbStorageBits(unsigned entries)
{
    return std::uint64_t{entries} * itlbEntryBits() +
           std::uint64_t{entries} * ceilLog2(entries);
}

/** Exact per-field ITLB storage declaration. */
inline StorageSchema
itlbStorageSchema(unsigned entries)
{
    StorageSchema s("ITLB");
    s.add("vpn", kModelAddrBits - kPageOffsetBits, entries)
        .add("ppn", kModelAddrBits - kPageOffsetBits, entries)
        .add("valid", 1, entries)
        .add("lru", ceilLog2(entries), entries);
    return s;
}

/// @}

// The named configurations in core_config.h default to these values;
// pin them to the paper's claims at compile time. Growing FtqEntry's
// architectural fields or the default BTB geometry past its budget is
// a compile error, not a silently-invalid figure.
static_assert(FtqEntry::kArchBitsPerEntry == 65,
              "FTQ entry architectural cost diverged from Table III");
static_assert(ftqArchStorageBits(24) == kPaperFtqBudgetBits,
              "24-entry FTQ must cost exactly the 195 B of Table III");
static_assert(ftqArchStorageBits(2) <= kPaperFtqBudgetBits,
              "the no-FDP FTQ must fit the FDP budget");
static_assert(btbStorageBits(8192, 7) == kPaperBtbBudgetBits,
              "default BTB geometry diverged from Section VI-D");
static_assert(rasStorageBits(32) == kPaperRasBudgetBits,
              "default RAS depth diverged from Table IV");

// ---------------------------------------------------------------------
// Exact per-field schema sums: pin every named configuration so drift
// in any field width or table geometry is a compile error. The TAGE
// variants carry the paper's nominal Fig. 12 labels (9/18/36 KB of
// tagged+base tables) — the pinned totals are the *exact* modeled
// bits: tagged entries (ctr+tag+useful), bimodal base, plus the 86
// bits of mutable side state (4b use-alt counter, 18b useful-reset
// tick, 64b allocation LFSR).
// ---------------------------------------------------------------------
static_assert(tageTaggedEntryBits(TageConfig{}) == 15,
              "TAGE tagged entry is 3b ctr + 10b tag + 2b useful");
static_assert(tageStorageBits(TageConfig::sized(9)) == 100438,
              "Fig. 12 9KB TAGE: 12x512x15 + 4096x2 + 86 exact bits");
static_assert(tageStorageBits(TageConfig::sized(18)) == 200790,
              "Fig. 12 18KB TAGE (baseline): 12x1024x15 + 8192x2 + 86");
static_assert(tageStorageBits(TageConfig::sized(36)) == 401494,
              "Fig. 12 36KB TAGE: 12x2048x15 + 16384x2 + 86 exact bits");
static_assert(ittageTaggedEntryBits(IttageConfig{}) == 61,
              "ITTAGE tagged entry is 9b tag + valid + 48b target + 3b");
static_assert(ittageStorageBits(IttageConfig{}) == 285760,
              "default ITTAGE: 6x512x61 + 2048x48 + 64 exact bits");
// The BTB's 7B/entry decomposes exactly into its schema fields: valid
// + 3b kind + 2b LRU rank (4 ways) + 34b compressed target leave a
// 16b partial tag.
static_assert(btbEntryBits(BtbConfig{}) ==
                  1 + kBtbKindBits + ceilLog2(4) + kBtbTargetBits + 16,
              "7B BTB entry = valid + kind + lru + target + 16b tag");
static_assert(btbStorageBits(1024, 7) == kPaperL1BtbFilterBudgetBits,
              "1K-entry L1 filter BTB costs exactly 7 KB");
static_assert(decodeQueueStorageBits(64) == 5184,
              "64-entry decode queue: 64 x (48 pc + 32 inst + 1 hint)");
static_assert(itlbStorageBits(64) == 5056,
              "64-entry ITLB: 64 x 73 + 64 x 6 LRU exact bits");

/**
 * Compile-time budget gate: instantiating with Bits > LimitBits fails
 * compilation. Use to pin a config constant to its paper budget:
 *
 *   static_assert(StaticBudgetCheck<ftqArchStorageBits(24),
 *                                   kPaperFtqBudgetBits>::ok);
 */
template <std::uint64_t Bits, std::uint64_t LimitBits>
struct StaticBudgetCheck
{
    static_assert(Bits <= LimitBits,
                  "storage budget exceeded (hardware-illegal config)");
    static constexpr bool ok = true;
    static constexpr std::uint64_t slackBits = LimitBits - Bits;
};

/** One accounted structure. */
struct BudgetItem
{
    std::string name;
    std::uint64_t bits = 0;
    std::uint64_t limitBits = 0; ///< 0: informational, never enforced.
    /** Per-field declaration; empty when only a total was reported. */
    StorageSchema schema;

    [[nodiscard]] bool overLimit() const
    {
        return limitBits != 0 && bits > limitBits;
    }

    /** True when the bits are an exact per-field schema sum. */
    [[nodiscard]] bool exact() const { return !schema.empty(); }
};

/**
 * The result of a budget check: per-structure costs, limits, and an
 * overall verdict.
 */
class BudgetReport
{
  public:
    explicit BudgetReport(std::string title) : title_(std::move(title)) {}

    void
    add(std::string name, std::uint64_t bits, std::uint64_t limit_bits = 0)
    {
        items_.push_back({std::move(name), bits, limit_bits, {}});
    }

    /**
     * Accounts a structure from its exact per-field schema: the bits
     * are computed by summation, never passed in, so a schema-carrying
     * item cannot disagree with its declaration. @p name overrides the
     * schema's structure name (e.g. "FTQ(arch)" for the FTQ schema).
     */
    void
    add(std::string name, StorageSchema schema, std::uint64_t limit_bits = 0)
    {
        const std::uint64_t bits = schema.totalBits();
        items_.push_back(
            {std::move(name), bits, limit_bits, std::move(schema)});
    }

    /** As above, named by the schema's own structure name. */
    void
    add(StorageSchema schema, std::uint64_t limit_bits = 0)
    {
        std::string name = schema.structure();
        add(std::move(name), std::move(schema), limit_bits);
    }

    [[nodiscard]] const std::string &title() const { return title_; }
    [[nodiscard]] const std::vector<BudgetItem> &items() const
    {
        return items_;
    }

    /** Sum of all accounted bits (informational items included). */
    [[nodiscard]] std::uint64_t totalBits() const;

    /** True when no item exceeds its limit. */
    [[nodiscard]] bool ok() const;

    /** Names of the items over budget (empty when ok()). */
    [[nodiscard]] std::vector<std::string> violations() const;

    /** Human-readable table (bits, bytes, limit, verdict per item). */
    [[nodiscard]] std::string toString() const;

  private:
    std::string title_;
    std::vector<BudgetItem> items_;
};

/**
 * A named budget accountant: structures report their storage into it
 * (typically via their storageBits() method), each against an optional
 * limit, and report() renders the verdict.
 */
class StorageBudget
{
  public:
    explicit StorageBudget(std::string name) : name_(std::move(name)) {}

    /** Accounts @p bits for @p item (limit 0 = informational). */
    void
    add(std::string item, std::uint64_t bits, std::uint64_t limit_bits = 0)
    {
        report_.add(std::move(item), bits, limit_bits);
    }

    [[nodiscard]] const std::string &name() const { return name_; }
    [[nodiscard]] std::uint64_t totalBits() const
    {
        return report_.totalBits();
    }
    [[nodiscard]] bool ok() const { return report_.ok(); }
    [[nodiscard]] BudgetReport report() const { return report_; }

  private:
    std::string name_;
    BudgetReport report_{name_};
};

/** Per-structure limits a configuration is verified against. */
struct StorageLimits
{
    std::uint64_t ftqBits = kPaperFtqBudgetBits;
    std::uint64_t btbBits = kPaperBtbBudgetBits;
    /** The L1 filter BTB of the two-level hierarchy has its own
     *  budget line; it no longer rides inside btbBits. */
    std::uint64_t l1BtbBits = kPaperL1BtbFilterBudgetBits;
    /** Direction predictor: the configured TAGE size is its own
     *  nominal budget (9/18/36 KB variants of Fig. 12). */
    std::uint64_t prefetcherBits = kIpc1PrefetcherBudgetBits;
    std::uint64_t rasBits = kPaperRasBudgetBits;
};

/**
 * Accounts every storage-bearing structure a CoreConfig would
 * instantiate (FTQ, BTB hierarchy incl. the L1 filter, direction and
 * indirect predictors, history folds, RAS, decode queue, ITLB, caches
 * incl. replacement state) against @p limits. Every item carries its
 * exact per-field StorageSchema; bits are schema sums, not nominal
 * labels. The L1I/L1D/L2/LLC data arrays, decode queue, ITLB, and
 * predictors are reported informationally: iso-storage comparisons
 * hold them fixed rather than budgeted.
 */
BudgetReport coreStorageReport(const CoreConfig &cfg,
                               const StorageLimits &limits = {});

/**
 * As above, additionally accounting @p prefetcher metadata against the
 * 128 KB IPC-1 budget.
 */
BudgetReport coreStorageReport(const CoreConfig &cfg,
                               const InstPrefetcher &prefetcher,
                               const StorageLimits &limits = {});

/**
 * Verifies the named configurations of core_config.h
 * (paperBaselineConfig, noFdpConfig, twoLevelBtbConfig) against the
 * paper budgets. Returns the first failing report, or the last
 * (passing) one.
 */
BudgetReport checkNamedConfigs();

} // namespace fdip

#endif // FDIP_CHECK_BUDGET_H_
