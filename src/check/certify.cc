#include "check/certify.h"

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "check/budget.h"
#include "util/log.h"

namespace fdip
{

namespace
{

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};

using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

/** Minimal JSON string escaping (names are simple identifiers). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

/** The named configurations a certificate covers, in emission order. */
struct NamedConfig
{
    std::string name;
    CoreConfig cfg;
};

std::vector<NamedConfig>
certifiedConfigs()
{
    std::vector<NamedConfig> configs;
    configs.push_back({"paper-baseline", paperBaselineConfig()});
    configs.push_back({"no-fdp", noFdpConfig()});
    configs.push_back({"two-level-btb", twoLevelBtbConfig()});
    CoreConfig tage9 = paperBaselineConfig();
    tage9.bpu.tageKilobytes = 9;
    configs.push_back({"tage-9kb", std::move(tage9)});
    CoreConfig tage36 = paperBaselineConfig();
    tage36.bpu.tageKilobytes = 36;
    configs.push_back({"tage-36kb", std::move(tage36)});
    return configs;
}

const char *
itemVerdict(const BudgetItem &item)
{
    if (item.limitBits == 0)
        return "info";
    return item.overLimit() ? "over" : "ok";
}

void
appendItem(std::string &out, const BudgetItem &item, bool last)
{
    // A certificate certifies *exact* accounting: an item that carries
    // no per-field schema would be an approximation, which the format
    // forbids.
    if (!item.exact()) {
        fdip_fatal("budget item '%s' has no storage schema",
                   item.name.c_str());
    }
    out += log_detail::format(
        "      {\"name\": \"%s\", \"bits\": %llu, \"limit_bits\": %llu, "
        "\"verdict\": \"%s\", \"fields\": [\n",
        escape(item.name).c_str(),
        static_cast<unsigned long long>(item.bits),
        static_cast<unsigned long long>(item.limitBits),
        itemVerdict(item));
    const auto &fields = item.schema.fields();
    for (std::size_t i = 0; i < fields.size(); ++i) {
        const SchemaField &f = fields[i];
        out += log_detail::format(
            "        {\"field\": \"%s\", \"width_bits\": %llu, "
            "\"count\": %llu, \"bits\": %llu}%s\n",
            escape(f.field).c_str(),
            static_cast<unsigned long long>(f.widthBits),
            static_cast<unsigned long long>(f.count),
            static_cast<unsigned long long>(f.bits()),
            i + 1 < fields.size() ? "," : "");
    }
    out += log_detail::format("      ]}%s\n", last ? "" : ",");
}

} // namespace

std::string
budgetCertificateJson()
{
    const auto configs = certifiedConfigs();
    std::string out = "{\n";
    out += "  \"format\": \"fdip-budget-certificate-v1\",\n";
    out += log_detail::format("  \"addr_bits\": %u,\n", kSchemaAddrBits);
    bool all_ok = true;
    std::string body;
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        const NamedConfig &nc = configs[ci];
        const BudgetReport r = coreStorageReport(nc.cfg);
        all_ok = all_ok && r.ok();
        body += log_detail::format(
            "    {\"name\": \"%s\", \"verdict\": \"%s\", "
            "\"total_bits\": %llu, \"structures\": [\n",
            escape(nc.name).c_str(), r.ok() ? "ok" : "over",
            static_cast<unsigned long long>(r.totalBits()));
        const auto &items = r.items();
        for (std::size_t i = 0; i < items.size(); ++i)
            appendItem(body, items[i], i + 1 == items.size());
        body += log_detail::format("    ]}%s\n",
                                   ci + 1 < configs.size() ? "," : "");
    }
    out += log_detail::format("  \"verdict\": \"%s\",\n",
                              all_ok ? "ok" : "over");
    out += "  \"configs\": [\n";
    out += body;
    out += "  ]\n}\n";
    return out;
}

bool
budgetCertificateOk()
{
    for (const auto &nc : certifiedConfigs()) {
        if (!coreStorageReport(nc.cfg).ok())
            return false;
    }
    return true;
}

bool
writeBudgetCertificate(const std::string &path)
{
    FileHandle f(std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    const std::string json = budgetCertificateJson();
    return std::fwrite(json.data(), 1, json.size(), f.get()) ==
           json.size();
}

} // namespace fdip
