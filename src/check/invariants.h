/**
 * @file
 * Structure-level invariant checkers for the simulator's hardware
 * models. Each function throws InvariantViolation (via FDIP_CHECK) on
 * the first violated property and is a no-op in builds with checks
 * compiled out.
 *
 * Two kinds of properties are verified:
 *
 *  - *Legality*: a configuration describes buildable hardware (way
 *    counts divide entry counts, power-of-two set counts, non-zero
 *    bandwidths). These are the machine-checked versions of the
 *    paper's Table III/IV constraints.
 *  - *Conservation*: counters that must agree by construction
 *    (tag accesses = hits + misses, mispredicts = sum of cause
 *    buckets, FTQ occupancy <= capacity). A violated conservation law
 *    means the simulator is silently corrupting the statistics every
 *    figure is derived from.
 *
 * Header-only so fdip_core can call these from the frontend hot loop
 * without a dependency on the fdip_check library (which links against
 * fdip_core for the budget accounting).
 */

#ifndef FDIP_CHECK_INVARIANTS_H_
#define FDIP_CHECK_INVARIANTS_H_

#include "bpu/btb.h"
#include "bpu/ras.h"
#include "cache/cache.h"
#include "core/core_config.h"
#include "core/ftq.h"
#include "core/sim_stats.h"
#include "util/bits.h"
#include "util/hotpath.h"
#include "util/invariant.h"

namespace fdip
{

/** BTB geometry legality (way count, set count, entry cost). */
inline void
checkBtbConfig(const BtbConfig &cfg)
{
    InvariantScope scope("checkBtbConfig");
    FDIP_CHECK(cfg.ways > 0, "BTB must have at least one way");
    FDIP_CHECK(cfg.numEntries > 0, "BTB must have at least one entry");
    FDIP_CHECK(cfg.numEntries % cfg.ways == 0,
               "BTB entries %u not divisible by ways %u", cfg.numEntries,
               cfg.ways);
    FDIP_CHECK(isPowerOf2(cfg.numEntries / cfg.ways),
               "BTB set count %u must be a power of two",
               cfg.numEntries / cfg.ways);
    FDIP_CHECK(cfg.ways <= cfg.numEntries,
               "BTB ways %u exceed entries %u", cfg.ways, cfg.numEntries);
    FDIP_CHECK(cfg.bytesPerEntry > 0, "BTB entry cost must be non-zero");
}

/** Cache geometry legality. */
inline void
checkCacheConfig(const CacheConfig &cfg)
{
    InvariantScope scope("checkCacheConfig");
    FDIP_CHECK(cfg.ways > 0, "%s: must have at least one way",
               cfg.name.c_str());
    FDIP_CHECK(isPowerOf2(cfg.lineBytes),
               "%s: line size %u must be a power of two", cfg.name.c_str(),
               cfg.lineBytes);
    FDIP_CHECK(cfg.sizeBytes >= std::uint64_t{cfg.lineBytes} * cfg.ways,
               "%s: size %llu smaller than one set (%u ways x %u B lines)",
               cfg.name.c_str(),
               static_cast<unsigned long long>(cfg.sizeBytes), cfg.ways,
               cfg.lineBytes);
    const std::uint64_t lines = cfg.sizeBytes / cfg.lineBytes;
    FDIP_CHECK(lines % cfg.ways == 0,
               "%s: %llu lines not divisible by %u ways", cfg.name.c_str(),
               static_cast<unsigned long long>(lines), cfg.ways);
    FDIP_CHECK(isPowerOf2(lines / cfg.ways),
               "%s: set count %llu must be a power of two",
               cfg.name.c_str(),
               static_cast<unsigned long long>(lines / cfg.ways));
}

/** Whole-core configuration legality (Table IV shape constraints). */
inline void
checkCoreConfig(const CoreConfig &cfg)
{
    InvariantScope scope("checkCoreConfig");
    FDIP_CHECK(cfg.ftqEntries >= 2,
               "FTQ needs >= 2 entries (2 disables FDP), got %u",
               cfg.ftqEntries);
    FDIP_CHECK(cfg.predictBandwidth > 0, "predict bandwidth must be > 0");
    FDIP_CHECK(cfg.maxTakenPerCycle > 0,
               "at least one taken branch per cycle required");
    FDIP_CHECK(cfg.fetchBandwidth > 0, "fetch bandwidth must be > 0");
    FDIP_CHECK(cfg.fetchProbesPerCycle > 0,
               "at least one FTQ probe per cycle required");
    FDIP_CHECK(cfg.l1iMshrs > 0, "L1I needs at least one MSHR");
    FDIP_CHECK(cfg.itlbEntries > 0, "ITLB must have entries");
    FDIP_CHECK(cfg.decodeQueueEntries > 0, "decode queue must have entries");
    FDIP_CHECK(cfg.robEntries > 0, "ROB must have entries");
    FDIP_CHECK(cfg.commitWidth > 0, "commit width must be > 0");
    FDIP_CHECK(cfg.bpu.rasDepth > 0, "RAS depth must be > 0");
    FDIP_CHECK(!cfg.usePrefetchBuffer || cfg.prefetchBufferLines > 0,
               "prefetch buffer enabled with zero lines");
    checkBtbConfig(cfg.bpu.btb);
    checkCacheConfig(cfg.l1i);
    checkCacheConfig(cfg.mem.l1d);
    checkCacheConfig(cfg.mem.l2);
    checkCacheConfig(cfg.mem.llc);
}

/** One FTQ entry's internal consistency. */
FDIP_HOT_PATH inline void
checkFtqEntry(const FtqEntry &e)
{
    FDIP_CHECK(e.termOffset < kInstsPerBlock,
               "FTQ entry terminates at offset %u beyond the %u-inst block",
               e.termOffset, kInstsPerBlock);
    FDIP_CHECK(e.startOffset() <= e.termOffset,
               "FTQ entry starts (%u) after it terminates (%u)",
               e.startOffset(), e.termOffset);
    FDIP_CHECK(e.numEvents <= kInstsPerBlock,
               "FTQ entry records %u events for a %u-inst block",
               e.numEvents, kInstsPerBlock);
    FDIP_CHECK(e.state != FtqState::kInvalid,
               "queued FTQ entry in the invalid state");
    for (unsigned i = 1; i < e.numEvents; ++i) {
        FDIP_CHECK(e.events[i - 1].offset < e.events[i].offset,
                   "FTQ entry events not strictly ordered by offset");
    }
}

/**
 * FTQ integrity: occupancy within capacity, entries well-formed, and
 * block sequence numbers strictly increasing from head to tail.
 */
FDIP_HOT_PATH inline void
checkFtqIntegrity(const Ftq &ftq)
{
    InvariantScope scope("checkFtqIntegrity");
    FDIP_CHECK(ftq.size() <= ftq.capacity(),
               "FTQ occupancy %zu exceeds capacity %zu", ftq.size(),
               ftq.capacity());
    for (std::size_t i = 0; i < ftq.size(); ++i) {
        checkFtqEntry(ftq.at(i));
        if (i > 0) {
            FDIP_CHECK(ftq.at(i - 1).seq < ftq.at(i).seq,
                       "FTQ block sequence not monotone at position %zu", i);
        }
    }
}

/** Tag-access conservation: every probe hits or misses, never both. */
FDIP_HOT_PATH inline void
checkCacheConservation(const Cache &cache)
{
    InvariantScope scope("checkCacheConservation");
    FDIP_CHECK(cache.hits() + cache.misses() == cache.tagAccesses(),
               "%s: hits %llu + misses %llu != tag accesses %llu",
               cache.config().name.c_str(),
               static_cast<unsigned long long>(cache.hits()),
               static_cast<unsigned long long>(cache.misses()),
               static_cast<unsigned long long>(cache.tagAccesses()));
}

/** RAS structural sanity and snapshot bounds. */
inline void
checkRasSnapshot(const RasSnapshot &snap, const Ras &ras)
{
    InvariantScope scope("checkRasSnapshot");
    FDIP_CHECK(snap.topIndex < ras.depth(),
               "RAS snapshot index %u out of bounds (depth %u)",
               snap.topIndex, ras.depth());
    FDIP_CHECK(snap.liveCount <= ras.depth(),
               "RAS snapshot live count %u exceeds depth %u",
               snap.liveCount, ras.depth());
}

/**
 * Statistics conservation laws. Only identities that survive the
 * warmup-boundary stats reset are checked here (counters zeroed
 * together and incremented together).
 */
FDIP_HOT_PATH inline void
checkSimStats(const SimStats &s)
{
    InvariantScope scope("checkSimStats");
    FDIP_CHECK(s.mispredicts == s.mispredictsCondDir +
                                    s.mispredictsBtbMissTaken +
                                    s.mispredictsTarget +
                                    s.mispredictsPfcMisfire,
               "mispredict cause buckets do not sum to the total");
    FDIP_CHECK(s.pfcFires >= s.pfcCorrect + s.pfcWrong,
               "more PFC outcomes than PFC fires");
    FDIP_CHECK(s.l1iDemandMisses <= s.l1iDemandAccesses,
               "more L1I demand misses than demand accesses");
    FDIP_CHECK(s.l1iDemandAccesses <= s.l1iTagAccesses,
               "more L1I demand accesses than total tag accesses");
}

/**
 * Full end-of-run statistics check. Valid only for runs without a
 * warmup reset (fills spanning the boundary break these identities);
 * used by the test suites on warmup-free runs.
 */
inline void
checkSimStatsFinal(const SimStats &s)
{
    InvariantScope scope("checkSimStatsFinal");
    checkSimStats(s);
    FDIP_CHECK(s.missFullyExposed + s.missPartiallyExposed +
                       s.missCovered <=
                   s.l1iDemandMisses,
               "more classified demand misses than demand misses");
    FDIP_CHECK(s.prefetchesRedundant <= s.prefetchesIssued,
               "more redundant prefetches than issued prefetches");
    FDIP_CHECK(s.prefetchesUseful <= s.prefetchesIssued,
               "more useful prefetches than issued prefetches");
    FDIP_CHECK(s.committedInsts <= s.deliveredInsts,
               "more committed than delivered correct-path instructions");
    // Cycle accounting (obs/cycle_account.h). Not valid mid-run or
    // across a warmup reset: the backend counts starvationCycles from
    // tick 0, but buckets are charged only once warm — Core::run
    // checks the post-warmup per-tick form itself.
    FDIP_CHECK(s.stallCycleSum() == s.starvationCycles,
               "stall buckets do not sum to starvation cycles");
    FDIP_CHECK(s.cycleBucketSum() == s.cycles,
               "cycle buckets do not sum to total cycles");
}

} // namespace fdip

#endif // FDIP_CHECK_INVARIANTS_H_
