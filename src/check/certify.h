/**
 * @file
 * Machine-readable iso-storage budget certificates.
 *
 * A certificate is the exportable form of the budget analysis: for
 * each named configuration it lists every accounted structure with its
 * exact per-field bit breakdown, the limit it was checked against, and
 * a verdict. The format is stable JSON (`fdip-budget-certificate-v1`)
 * so CI can diff a fresh certificate against a checked-in golden and
 * external tooling can audit the paper's iso-storage claims without
 * reading the simulator.
 *
 * Every emitted entry is an exact schema sum — the certifier refuses
 * to emit an item that carries no per-field schema, so a certificate
 * by construction contains zero approximated entries.
 */

#ifndef FDIP_CHECK_CERTIFY_H_
#define FDIP_CHECK_CERTIFY_H_

#include <string>

namespace fdip
{

/**
 * Renders the budget certificate for the named configurations
 * (paper-baseline, no-fdp, two-level-btb, tage-9kb, tage-36kb) as a
 * deterministic JSON document. Identical configurations always produce
 * byte-identical text.
 */
std::string budgetCertificateJson();

/** True when every certified configuration is within its budgets. */
bool budgetCertificateOk();

/** Writes budgetCertificateJson() to @p path; false on I/O failure. */
bool writeBudgetCertificate(const std::string &path);

} // namespace fdip

#endif // FDIP_CHECK_CERTIFY_H_
