/**
 * @file
 * Next-line instruction prefetching (paper's NL1 baseline): on a demand
 * miss, prefetch the next sequential line(s).
 */

#ifndef FDIP_PREFETCH_NEXT_LINE_H_
#define FDIP_PREFETCH_NEXT_LINE_H_

#include "prefetch/prefetcher.h"
#include "util/hotpath.h"
#include "util/state.h"

namespace fdip
{

/**
 * Next-line prefetcher. Degree 1 is the paper's NL1; higher degrees
 * are available for the ablation bench.
 */
class NextLinePrefetcher final : public InstPrefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned degree = 1) : degree_(degree) {}

    const char *name() const override { return "NL1"; }
    std::uint64_t storageBits() const override { return 0; }

    FDIP_HOT_PATH void
    onDemandLookup(Addr line_addr, bool hit,
                   Cycle now) FDIP_HOT_NOEXCEPT override
    {
        (void)now;
        if (hit)
            return;
        for (unsigned d = 1; d <= degree_; ++d)
            enqueuePrefetch(line_addr + d * kCacheLineBytes);
    }

  private:
    FDIP_STATE_MICRO unsigned degree_;
};

} // namespace fdip

#endif // FDIP_PREFETCH_NEXT_LINE_H_
