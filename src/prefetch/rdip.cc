#include "prefetch/rdip.h"

#include "util/bits.h"
#include "util/hotpath.h"

namespace fdip
{

RdipPrefetcher::RdipPrefetcher(const RdipConfig &cfg)
    : cfg_(cfg), table_(std::size_t{1} << cfg.logTableEntries),
      shadowStack_(kShadowStackDepth)
{
}

FDIP_HOT_PATH std::uint64_t
RdipPrefetcher::signature() const
{
    // Hash the top rasDepthHashed entries of the shadow stack.
    std::uint64_t sig = 0x9e37;
    const std::size_t n =
        std::min<std::size_t>(cfg_.rasDepthHashed, shadowStack_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t v =
            shadowStack_[shadowStack_.size() - 1 - i] >> 2;
        sig ^= (v << (9 * i)) ^ (v >> (40 - 9 * i));
    }
    return mix64(sig);
}

FDIP_HOT_PATH void
RdipPrefetcher::trigger(std::uint64_t sig)
{
    const Entry &e = table_[sig & mask(cfg_.logTableEntries)];
    if (!e.valid ||
        e.tag != static_cast<std::uint32_t>(
                     (sig >> cfg_.logTableEntries) & mask(12))) {
        return;
    }
    for (unsigned i = 0; i < e.numLines; ++i)
        enqueuePrefetch(e.lines[i]);
}

FDIP_HOT_PATH void
RdipPrefetcher::onBranch(Addr pc, InstClass kind, Addr target,
                         bool taken) FDIP_HOT_NOEXCEPT
{
    (void)target;
    if (!taken)
        return;
    if (isCall(kind)) {
        if (shadowStack_.full())
            shadowStack_.removeAt(0);
        shadowStack_.pushBack(pc + kInstBytes);
    } else if (isReturn(kind)) {
        if (!shadowStack_.empty())
            shadowStack_.popBack();
    } else {
        return;
    }
    // RAS changed: new program context.
    previousSig_ = currentSig_;
    currentSig_ = signature();
    trigger(currentSig_);
}

FDIP_HOT_PATH void
RdipPrefetcher::onDemandLookup(Addr line_addr, bool hit,
                               Cycle now) FDIP_HOT_NOEXCEPT
{
    (void)now;
    if (hit)
        return;
    // Record the miss against the *previous* context so that, on
    // recurrence, the prefetch fires one context early (lookahead).
    Entry &e = table_[previousSig_ & mask(cfg_.logTableEntries)];
    const auto tag = static_cast<std::uint32_t>(
        (previousSig_ >> cfg_.logTableEntries) & mask(12));
    if (!e.valid || e.tag != tag) {
        e.valid = true;
        e.tag = tag;
        e.numLines = 0;
        e.nextVictim = 0;
    }
    for (unsigned i = 0; i < e.numLines; ++i) {
        if (e.lines[i] == line_addr)
            return;
    }
    if (e.numLines < cfg_.linesPerEntry) {
        e.lines[e.numLines++] = line_addr;
    } else {
        e.lines[e.nextVictim] = line_addr;
        e.nextVictim = static_cast<std::uint8_t>(
            (e.nextVictim + 1) % cfg_.linesPerEntry);
    }
}

std::uint64_t
RdipPrefetcher::storageBits() const
{
    const std::uint64_t entry_bits = 1 + 12 + 34ull * cfg_.linesPerEntry;
    return (std::uint64_t{1} << cfg_.logTableEntries) * entry_bits;
}

} // namespace fdip
