#include "prefetch/sn4l_dis.h"

#include "bpu/bpu.h"
#include "trace/program.h"
#include "util/bits.h"
#include "util/hotpath.h"

namespace fdip
{

Sn4lDisPrefetcher::Sn4lDisPrefetcher(const Sn4lDisConfig &cfg)
    : cfg_(cfg),
      useful_(std::size_t{1} << cfg.logSn4lEntries, 0x0f),
      dis_(std::size_t{1} << cfg.logDisEntries)
{
}

void
Sn4lDisPrefetcher::bind(Bpu &bpu, const ProgramImage &image)
{
    bpu_ = &bpu;
    image_ = &image;
}

FDIP_HOT_PATH std::uint32_t
Sn4lDisPrefetcher::sn4lIndex(Addr line) const
{
    const std::uint64_t l = line / kCacheLineBytes;
    return static_cast<std::uint32_t>((l ^ (l >> cfg_.logSn4lEntries)) &
                                      mask(cfg_.logSn4lEntries));
}

FDIP_HOT_PATH std::uint32_t
Sn4lDisPrefetcher::disIndex(Addr line) const
{
    const std::uint64_t l = line / kCacheLineBytes;
    return static_cast<std::uint32_t>(mix64(l) &
                                      mask(cfg_.logDisEntries));
}

FDIP_HOT_PATH std::uint32_t
Sn4lDisPrefetcher::disTag(Addr line) const
{
    const std::uint64_t l = line / kCacheLineBytes;
    return static_cast<std::uint32_t>((mix64(l) >> 32) & mask(12));
}

FDIP_HOT_PATH void
Sn4lDisPrefetcher::onDemandLookup(Addr line_addr, bool hit,
                                  Cycle now) FDIP_HOT_NOEXCEPT
{
    (void)now;
    const bool new_line = line_addr != lastAccessLine_;

    // ---- SN4L training: a demand access within 4 lines after an
    // earlier access marks that distance useful.
    if (new_line && lastAccessLine_ != kNoAddr &&
        line_addr > lastAccessLine_) {
        const Addr delta =
            (line_addr - lastAccessLine_) / kCacheLineBytes;
        if (delta >= 1 && delta <= 4) {
            useful_[sn4lIndex(lastAccessLine_)] |=
                static_cast<std::uint8_t>(1u << (delta - 1));
        }
    }

    if (new_line) {
        // ---- SN4L prefetch: useful next lines only.
        const std::uint8_t bits = useful_[sn4lIndex(line_addr)];
        for (unsigned d = 1; d <= 4; ++d) {
            if ((bits >> (d - 1)) & 1)
                enqueuePrefetch(line_addr + d * kCacheLineBytes);
        }

        // ---- Dis prefetch: follow a recorded discontinuity.
        const DisEntry &e = dis_[disIndex(line_addr)];
        if (e.target != kNoAddr && e.tag == disTag(line_addr))
            enqueuePrefetch(e.target);

        lastAccessLine_ = line_addr;
    }

    if (!hit) {
        // ---- Dis training: record jumps between miss lines that the
        // next-4-line window cannot cover.
        if (lastMissLine_ != kNoAddr && line_addr != lastMissLine_) {
            const bool sequentialish =
                line_addr > lastMissLine_ &&
                line_addr - lastMissLine_ <= 4 * kCacheLineBytes;
            if (!sequentialish) {
                DisEntry &e = dis_[disIndex(lastMissLine_)];
                e.tag = disTag(lastMissLine_);
                e.target = line_addr;
            }
        }
        lastMissLine_ = line_addr;
    }
}

FDIP_HOT_PATH void
Sn4lDisPrefetcher::onFillComplete(Addr line_addr, bool was_prefetch,
                                  Cycle now) FDIP_HOT_NOEXCEPT
{
    (void)now;
    if (!cfg_.btbPrefetch || bpu_ == nullptr || image_ == nullptr)
        return;
    // Install only from demand fills: pre-decoding every prefetched
    // line floods small BTBs with speculative branches and the
    // pollution swamps the coverage benefit.
    if (was_prefetch)
        return;

    // BTB prefetching: pre-decode the filled line and install every
    // PC-relative branch unconditionally. Register-indirect branches
    // cannot be prefetched (no target in the encoding).
    for (unsigned i = 0; i < kCacheLineBytes / kInstBytes; ++i) {
        const Addr pc = line_addr + i * kInstBytes;
        if (!image_->contains(pc))
            continue;
        const StaticInst &si = image_->instAt(pc);
        if (!isBranch(si.cls) || !isDirect(si.cls))
            continue;
        if (bpu_->btb().peek(pc).has_value())
            continue;
        // Unconditional install: force allocation regardless of the
        // frontend's taken-only policy (this is the pollution the
        // paper's Section VI-E measures).
        bpu_->btb().install(pc, si.cls, si.target, true);
        ++btbInstalls_;
    }
}

std::uint64_t
Sn4lDisPrefetcher::storageBits() const
{
    return (std::uint64_t{1} << cfg_.logSn4lEntries) * 4 +
           (std::uint64_t{1} << cfg_.logDisEntries) * (12 + 34);
}

} // namespace fdip
