#include "prefetch/eip.h"

#include "util/bits.h"
#include "util/hotpath.h"

namespace fdip
{

EipConfig
EipConfig::sized128KB()
{
    // ~5.9K entries x ~22.4B = ~129KB (the original's budget).
    EipConfig cfg;
    cfg.sets = 256;
    cfg.ways = 23;
    return cfg;
}

EipConfig
EipConfig::sized27KB()
{
    // ~1.3K entries x ~22.4B = ~28KB (the realistic budget).
    EipConfig cfg;
    cfg.sets = 128;
    cfg.ways = 10;
    return cfg;
}

EipPrefetcher::EipPrefetcher(const EipConfig &cfg, const char *name)
    : name_(name),
      cfg_(cfg),
      table_(std::size_t{cfg.sets} * cfg.ways),
      history_(cfg.historyDepth)
{
}

FDIP_HOT_PATH std::uint32_t
EipPrefetcher::setOf(Addr line) const
{
    const std::uint64_t l = line / kCacheLineBytes;
    return static_cast<std::uint32_t>(mix64(l) % cfg_.sets);
}

FDIP_HOT_PATH EipPrefetcher::Entry *
EipPrefetcher::find(Addr line)
{
    Entry *row = &table_[std::size_t{setOf(line)} * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (row[w].valid && row[w].srcLine == line)
            return &row[w];
    }
    return nullptr;
}

FDIP_HOT_PATH EipPrefetcher::Entry &
EipPrefetcher::allocate(Addr line)
{
    Entry *row = &table_[std::size_t{setOf(line)} * cfg_.ways];
    Entry *victim = &row[0];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (!row[w].valid) {
            victim = &row[w];
            break;
        }
        if (row[w].lru < victim->lru)
            victim = &row[w];
    }
    *victim = Entry{};
    victim->valid = true;
    victim->srcLine = line;
    victim->lru = ++lruClock_;
    return *victim;
}

FDIP_HOT_PATH void
EipPrefetcher::entangle(Addr src, Addr dst)
{
    Entry *e = find(src);
    if (e == nullptr)
        e = &allocate(src);
    e->lru = ++lruClock_;
    for (unsigned i = 0; i < e->numDests; ++i) {
        if (e->dests[i] == dst)
            return;
    }
    if (e->numDests < cfg_.destsPerEntry) {
        e->dests[e->numDests++] = dst;
    } else {
        e->dests[e->nextVictim] = dst;
        e->nextVictim = static_cast<std::uint8_t>(
            (e->nextVictim + 1) % cfg_.destsPerEntry);
    }
}

FDIP_HOT_PATH void
EipPrefetcher::onDemandLookup(Addr line_addr, bool hit,
                              Cycle now) FDIP_HOT_NOEXCEPT
{
    const bool new_line = line_addr != lastLine_;
    lastLine_ = line_addr;

    if (new_line) {
        // Record in the access history (source candidates).
        history_[histPos_] = HistoryRecord{line_addr, now};
        histPos_ = (histPos_ + 1) % history_.size();

        // Trigger: prefetch everything entangled with this line, and
        // follow the entangled chain for extra lead.
        Addr frontier[16];
        unsigned num_frontier = 0;
        frontier[num_frontier++] = line_addr;
        for (unsigned depth = 0; depth < cfg_.chainDepth; ++depth) {
            Addr next[16];
            unsigned num_next = 0;
            for (unsigned f = 0; f < num_frontier; ++f) {
                const Entry *e = find(frontier[f]);
                if (e == nullptr)
                    continue;
                for (unsigned i = 0; i < e->numDests; ++i) {
                    enqueuePrefetch(e->dests[i]);
                    if (num_next < 16)
                        next[num_next++] = e->dests[i];
                }
            }
            num_frontier = num_next;
            for (unsigned i = 0; i < num_next; ++i)
                frontier[i] = next[i];
            if (num_frontier == 0)
                break;
        }
    }

    if (!hit) {
        // Entangle with two sources: the youngest one old enough to
        // hide the miss latency, and the immediately preceding access
        // (short lead, catches path variations).
        Addr timely_src = kNoAddr;
        Addr recent_src = kNoAddr;
        for (std::size_t i = 1; i <= history_.size(); ++i) {
            const HistoryRecord &h =
                history_[(histPos_ + history_.size() - i) %
                         history_.size()];
            if (h.line == kNoAddr)
                break;
            if (h.line == line_addr)
                continue;
            if (recent_src == kNoAddr)
                recent_src = h.line;
            timely_src = h.line;
            if (h.when + cfg_.entangleLatency <= now)
                break;
        }
        if (timely_src != kNoAddr)
            entangle(timely_src, line_addr);
        if (recent_src != kNoAddr && recent_src != timely_src)
            entangle(recent_src, line_addr);

        // EIP's built-in next-line component.
        enqueuePrefetch(line_addr + kCacheLineBytes);
    }
}

std::uint64_t
EipPrefetcher::storageBits() const
{
    // valid + ~34b source tag + dests (34b each) + bookkeeping.
    const std::uint64_t entry_bits =
        1 + 34 + 34ull * cfg_.destsPerEntry + 8;
    return std::uint64_t{cfg_.sets} * cfg_.ways * entry_bits;
}

} // namespace fdip
