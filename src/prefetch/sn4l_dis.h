/**
 * @file
 * Divide-and-Conquer frontend prefetching (Ansari et al., ISCA 2020;
 * paper [13]), comprising three cooperating predictors:
 *
 *  - SN4L: selective-next-4-line — among the next four lines, prefetch
 *    only those that proved useful before (per-line usefulness bits).
 *  - Dis: discontinuity prediction — records jumps between I-cache
 *    miss lines and prefetches across them.
 *  - BTB prefetching — on I-cache fills, pre-decode the line and
 *    install its PC-relative branches into the BTB unconditionally
 *    (the paper's Section VI-E shows this can pollute large BTBs).
 */

#ifndef FDIP_PREFETCH_SN4L_DIS_H_
#define FDIP_PREFETCH_SN4L_DIS_H_

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"
#include "util/hotpath.h"
#include "util/state.h"

namespace fdip
{

class Bpu;
class ProgramImage;

/** Divide-and-Conquer sizing / component selection. */
struct Sn4lDisConfig
{
    unsigned logSn4lEntries = 13; ///< Usefulness vectors (4 bits each).
    unsigned logDisEntries = 12;  ///< Discontinuity table entries.
    bool btbPrefetch = true;      ///< Enable the BTB-prefetch component.
};

/**
 * The SN4L + Dis (+ BTB prefetch) prefetcher.
 */
class Sn4lDisPrefetcher final : public InstPrefetcher
{
  public:
    explicit Sn4lDisPrefetcher(const Sn4lDisConfig &cfg = Sn4lDisConfig());

    const char *name() const override
    {
        return cfg_.btbPrefetch ? "SN4L+Dis+BTB" : "SN4L+Dis";
    }
    std::uint64_t storageBits() const override;

    void bind(Bpu &bpu, const ProgramImage &image) override;

    void onDemandLookup(Addr line_addr, bool hit,
                        Cycle now) FDIP_HOT_NOEXCEPT override;
    void onFillComplete(Addr line_addr, bool was_prefetch,
                        Cycle now) FDIP_HOT_NOEXCEPT override;

    /** BTB installs performed by the BTB-prefetch component. */
    std::uint64_t btbPrefetchInstalls() const { return btbInstalls_; }

    void
    registerStats(StatRegistry &reg,
                  const std::string &prefix) const override
    {
        InstPrefetcher::registerStats(reg, prefix);
        reg.addCounter(prefix + ".btb_installs",
                       [this] { return btbInstalls_; },
                       "branches installed by BTB prefetching");
    }

  private:
    struct DisEntry
    {
        std::uint32_t tag = 0;
        Addr target = kNoAddr;
    };

    std::uint32_t sn4lIndex(Addr line) const;
    std::uint32_t disIndex(Addr line) const;
    std::uint32_t disTag(Addr line) const;

    FDIP_STATE_MICRO Sn4lDisConfig cfg_;
    FDIP_STATE_MICRO std::vector<std::uint8_t> useful_; ///< 4 bits/line.
    FDIP_STATE_MICRO std::vector<DisEntry> dis_;

    FDIP_STATE_MICRO Addr lastMissLine_ = kNoAddr;
    FDIP_STATE_MICRO Addr lastAccessLine_ = kNoAddr;

    FDIP_STATE_MICRO Bpu *bpu_ = nullptr;
    FDIP_STATE_MICRO const ProgramImage *image_ = nullptr;
    FDIP_STATE_MICRO std::uint64_t btbInstalls_ = 0;
};

} // namespace fdip

#endif // FDIP_PREFETCH_SN4L_DIS_H_
