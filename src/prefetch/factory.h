/**
 * @file
 * Named prefetcher construction for the experiment harness and bench
 * binaries.
 */

#ifndef FDIP_PREFETCH_FACTORY_H_
#define FDIP_PREFETCH_FACTORY_H_

#include <memory>
#include <string>

#include "prefetch/prefetcher.h"

namespace fdip
{

/**
 * Creates a prefetcher by name. Known names: "none", "nl1",
 * "fnl+mma", "d-jolt", "eip-128", "eip-27", "rdip", "sn4l+dis",
 * "sn4l+dis+btb". Unknown names are fatal.
 */
std::unique_ptr<InstPrefetcher> makePrefetcher(const std::string &name);

} // namespace fdip

#endif // FDIP_PREFETCH_FACTORY_H_
