/**
 * @file
 * RDIP — RAS-Directed Instruction Prefetching (Kolli, Saidi & Wenisch,
 * MICRO 2013; the paper's reference [9]): program context is captured
 * as a hash of the return-address-stack contents; I-cache misses are
 * recorded against the context and prefetched when it recurs. D-JOLT
 * (also implemented) is the IPC-1 refinement of this idea.
 */

#ifndef FDIP_PREFETCH_RDIP_H_
#define FDIP_PREFETCH_RDIP_H_

#include <array>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"
#include "util/fixed_vector.h"
#include "util/hotpath.h"
#include "util/state.h"

namespace fdip
{

/** RDIP sizing. */
struct RdipConfig
{
    unsigned rasDepthHashed = 4;   ///< Top-of-stack entries hashed.
    unsigned logTableEntries = 12; ///< Signature-table entries.
    unsigned linesPerEntry = 6;    ///< Miss lines per signature.
};

/**
 * The RDIP prefetcher. Maintains a shadow call stack from the
 * committed branch stream.
 */
class RdipPrefetcher final : public InstPrefetcher
{
  public:
    explicit RdipPrefetcher(const RdipConfig &cfg = RdipConfig());

    const char *name() const override { return "RDIP"; }
    std::uint64_t storageBits() const override;

    void onDemandLookup(Addr line_addr, bool hit,
                        Cycle now) FDIP_HOT_NOEXCEPT override;
    void onBranch(Addr pc, InstClass kind, Addr target,
                  bool taken) FDIP_HOT_NOEXCEPT override;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::array<Addr, 8> lines{};
        std::uint8_t numLines = 0;
        std::uint8_t nextVictim = 0;
    };

    std::uint64_t signature() const;
    void trigger(std::uint64_t sig);

    /** Shadow-stack depth bound: overflow drops the oldest frame. */
    static constexpr std::size_t kShadowStackDepth = 128;

    FDIP_STATE_MICRO RdipConfig cfg_;
    FDIP_STATE_MICRO std::vector<Entry> table_;
    FDIP_STATE_MICRO FixedVector<Addr> shadowStack_;
    FDIP_STATE_MICRO std::uint64_t currentSig_ = 0;
    FDIP_STATE_MICRO std::uint64_t previousSig_ = 0;
};

} // namespace fdip

#endif // FDIP_PREFETCH_RDIP_H_
