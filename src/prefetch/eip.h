/**
 * @file
 * The Entangling Instruction Prefetcher (Ros & Jimborean; IPC-1
 * winner, paper [18]). A destination miss line is "entangled" with a
 * source line accessed far enough in the past to hide the miss
 * latency; when the source is seen again, the destinations are
 * prefetched just in time.
 *
 * Two sizings from the paper: EIP-128KB (the original, 34-way) and
 * EIP-27KB (a realistic 8-way budget).
 */

#ifndef FDIP_PREFETCH_EIP_H_
#define FDIP_PREFETCH_EIP_H_

#include <array>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"
#include "util/hotpath.h"
#include "util/state.h"

namespace fdip
{

/** EIP sizing. */
struct EipConfig
{
    unsigned sets = 256;
    unsigned ways = 34;           ///< 34 = 128KB config; 8 = 27KB.
    unsigned destsPerEntry = 4;
    unsigned historyDepth = 64;   ///< Recent-access ring for sources.
    unsigned entangleLatency = 80; ///< Cycles of lead to hide.
    unsigned chainDepth = 3;      ///< Follow entangled chains this deep.

    /** The paper's two configurations. */
    static EipConfig sized128KB();
    static EipConfig sized27KB();
};

/**
 * The entangling prefetcher.
 */
class EipPrefetcher final : public InstPrefetcher
{
  public:
    explicit EipPrefetcher(const EipConfig &cfg = EipConfig::sized128KB(),
                           const char *name = "EIP");

    const char *name() const override { return name_; }
    std::uint64_t storageBits() const override;

    void onDemandLookup(Addr line_addr, bool hit,
                        Cycle now) FDIP_HOT_NOEXCEPT override;

  private:
    struct Entry
    {
        bool valid = false;
        Addr srcLine = kNoAddr;
        std::array<Addr, 4> dests{};
        std::uint8_t numDests = 0;
        std::uint8_t nextVictim = 0;
        std::uint64_t lru = 0;
    };

    struct HistoryRecord
    {
        Addr line = kNoAddr;
        Cycle when = 0;
    };

    std::uint32_t setOf(Addr line) const;
    Entry *find(Addr line);
    Entry &allocate(Addr line);
    void entangle(Addr src, Addr dst);

    FDIP_STATE_MICRO const char *name_;
    FDIP_STATE_MICRO EipConfig cfg_;
    FDIP_STATE_MICRO std::vector<Entry> table_;
    FDIP_STATE_MICRO std::vector<HistoryRecord> history_;
    FDIP_STATE_MICRO std::size_t histPos_ = 0;
    FDIP_STATE_MICRO std::uint64_t lruClock_ = 0;
    FDIP_STATE_MICRO Addr lastLine_ = kNoAddr;
};

} // namespace fdip

#endif // FDIP_PREFETCH_EIP_H_
