/**
 * @file
 * D-JOLT (Nakamura et al., IPC-1): distant-jolt prefetching. Function
 * call/return flow is summarized as a signature over a FIFO of recent
 * return addresses; miss lines are recorded against the signature that
 * was live several calls earlier, so that when the same call path
 * recurs, the misses several calls ahead are prefetched early enough.
 */

#ifndef FDIP_PREFETCH_DJOLT_H_
#define FDIP_PREFETCH_DJOLT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"
#include "util/hotpath.h"
#include "util/state.h"

namespace fdip
{

/** D-JOLT sizing. */
struct DjoltConfig
{
    unsigned fifoDepth = 2;       ///< Return-address FIFO length.
    unsigned logTableEntries = 12; ///< Per-range signature tables.
    unsigned linesPerEntry = 8;   ///< Miss lines stored per signature.
    unsigned shortDistance = 1;   ///< Calls ago (short-range table).
    unsigned longDistance = 3;    ///< Calls ago (long-range table).
};

/**
 * The D-JOLT prefetcher.
 */
class DjoltPrefetcher final : public InstPrefetcher
{
  public:
    explicit DjoltPrefetcher(const DjoltConfig &cfg = DjoltConfig());

    const char *name() const override { return "D-JOLT"; }
    std::uint64_t storageBits() const override;

    void onDemandLookup(Addr line_addr, bool hit,
                        Cycle now) FDIP_HOT_NOEXCEPT override;
    void onBranch(Addr pc, InstClass kind, Addr target,
                  bool taken) FDIP_HOT_NOEXCEPT override;

  private:
    struct Entry
    {
        std::uint32_t tag = 0;
        bool valid = false;
        std::array<Addr, 16> lines{};
        std::uint8_t numLines = 0;
        std::uint8_t nextVictim = 0;
    };

    using Table = std::vector<Entry>;

    std::uint64_t signature() const;
    std::uint32_t indexOf(std::uint64_t sig) const;
    std::uint32_t tagOf(std::uint64_t sig) const;
    void train(Table &table, std::uint64_t sig, Addr line);
    void prefetchFrom(Table &table, std::uint64_t sig);

    FDIP_STATE_MICRO DjoltConfig cfg_;
    FDIP_STATE_MICRO std::vector<Addr> retFifo_; ///< Recent returns.
    FDIP_STATE_MICRO std::size_t fifoPos_ = 0;
    FDIP_STATE_MICRO std::vector<std::uint64_t> sigHistory_; ///< Past calls.
    FDIP_STATE_MICRO std::size_t sigPos_ = 0;
    FDIP_STATE_MICRO Table shortTable_;
    FDIP_STATE_MICRO Table longTable_;
};

} // namespace fdip

#endif // FDIP_PREFETCH_DJOLT_H_
