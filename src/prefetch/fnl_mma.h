/**
 * @file
 * FNL+MMA (Seznec, IPC-1): Footprint Next Line + Multiple Miss Ahead.
 *
 * FNL is an aggressive next-line prefetcher gated by "worth
 * prefetching" confidence per line; MMA is a temporal component that
 * jumps several misses ahead by remembering, for each miss, the miss
 * that followed it N misses later.
 */

#ifndef FDIP_PREFETCH_FNL_MMA_H_
#define FDIP_PREFETCH_FNL_MMA_H_

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"
#include "util/hotpath.h"
#include "util/sat_counter.h"
#include "util/state.h"

namespace fdip
{

/** FNL+MMA sizing. */
struct FnlMmaConfig
{
    unsigned logFnlEntries = 14;  ///< Worth-next-line counters.
    unsigned fnlMaxDegree = 4;    ///< Chain length through worth bits.
    unsigned logMmaEntries = 12;  ///< Miss-ahead table entries.
    unsigned mmaDistance = 4;     ///< How many misses ahead MMA jumps.
};

/**
 * The FNL+MMA prefetcher.
 */
class FnlMmaPrefetcher final : public InstPrefetcher
{
  public:
    explicit FnlMmaPrefetcher(const FnlMmaConfig &cfg = FnlMmaConfig());

    const char *name() const override { return "FNL+MMA"; }
    std::uint64_t storageBits() const override;

    void onDemandLookup(Addr line_addr, bool hit,
                        Cycle now) FDIP_HOT_NOEXCEPT override;

  private:
    struct MmaEntry
    {
        std::uint32_t tag = 0;
        Addr targetLine = kNoAddr;
    };

    std::uint32_t fnlIndex(Addr line) const;
    std::uint32_t mmaIndex(Addr line) const;
    std::uint32_t mmaTag(Addr line) const;

    FDIP_STATE_MICRO FnlMmaConfig cfg_;
    FDIP_STATE_MICRO std::vector<SatCounter> worth_; ///< FNL confidence.
    FDIP_STATE_MICRO std::vector<MmaEntry> mma_;

    FDIP_STATE_MICRO Addr lastLine_ = kNoAddr;
    FDIP_STATE_MICRO std::vector<Addr> missHistory_; ///< Recent miss ring.
    FDIP_STATE_MICRO std::size_t missPos_ = 0;
};

} // namespace fdip

#endif // FDIP_PREFETCH_FNL_MMA_H_
