#include "prefetch/factory.h"

#include "prefetch/djolt.h"
#include "prefetch/eip.h"
#include "prefetch/fnl_mma.h"
#include "prefetch/next_line.h"
#include "prefetch/rdip.h"
#include "prefetch/sn4l_dis.h"
#include "util/log.h"

namespace fdip
{

std::unique_ptr<InstPrefetcher>
makePrefetcher(const std::string &name)
{
    if (name == "none")
        return std::make_unique<NullPrefetcher>();
    if (name == "nl1")
        return std::make_unique<NextLinePrefetcher>(1);
    if (name == "fnl+mma")
        return std::make_unique<FnlMmaPrefetcher>();
    if (name == "d-jolt")
        return std::make_unique<DjoltPrefetcher>();
    if (name == "eip-128") {
        return std::make_unique<EipPrefetcher>(EipConfig::sized128KB(),
                                               "EIP-128KB");
    }
    if (name == "eip-27") {
        return std::make_unique<EipPrefetcher>(EipConfig::sized27KB(),
                                               "EIP-27KB");
    }
    if (name == "rdip")
        return std::make_unique<RdipPrefetcher>();
    if (name == "sn4l+dis") {
        Sn4lDisConfig cfg;
        cfg.btbPrefetch = false;
        return std::make_unique<Sn4lDisPrefetcher>(cfg);
    }
    if (name == "sn4l+dis+btb")
        return std::make_unique<Sn4lDisPrefetcher>();
    fdip_fatal("unknown prefetcher '%s'", name.c_str());
}

} // namespace fdip
