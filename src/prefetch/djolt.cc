#include "prefetch/djolt.h"

#include "util/bits.h"
#include "util/hotpath.h"

namespace fdip
{

DjoltPrefetcher::DjoltPrefetcher(const DjoltConfig &cfg)
    : cfg_(cfg),
      retFifo_(cfg.fifoDepth, 0),
      sigHistory_(cfg.longDistance + 1, 0),
      shortTable_(std::size_t{1} << cfg.logTableEntries),
      longTable_(std::size_t{1} << cfg.logTableEntries)
{
}

FDIP_HOT_PATH std::uint64_t
DjoltPrefetcher::signature() const
{
    std::uint64_t sig = 0;
    for (std::size_t i = 0; i < retFifo_.size(); ++i) {
        const std::uint64_t v =
            retFifo_[(fifoPos_ + i) % retFifo_.size()] >> 2;
        sig ^= (v << (7 * i)) | (v >> (64 - 7 * i - 1));
    }
    return mix64(sig);
}

FDIP_HOT_PATH std::uint32_t
DjoltPrefetcher::indexOf(std::uint64_t sig) const
{
    return static_cast<std::uint32_t>(sig & mask(cfg_.logTableEntries));
}

FDIP_HOT_PATH std::uint32_t
DjoltPrefetcher::tagOf(std::uint64_t sig) const
{
    return static_cast<std::uint32_t>((sig >> cfg_.logTableEntries) &
                                      mask(12));
}

FDIP_HOT_PATH void
DjoltPrefetcher::train(Table &table, std::uint64_t sig, Addr line)
{
    Entry &e = table[indexOf(sig)];
    if (!e.valid || e.tag != tagOf(sig)) {
        e.valid = true;
        e.tag = tagOf(sig);
        e.numLines = 0;
        e.nextVictim = 0;
    }
    for (unsigned i = 0; i < e.numLines; ++i) {
        if (e.lines[i] == line)
            return;
    }
    if (e.numLines < cfg_.linesPerEntry) {
        e.lines[e.numLines++] = line;
    } else {
        e.lines[e.nextVictim] = line;
        e.nextVictim =
            static_cast<std::uint8_t>((e.nextVictim + 1) %
                                      cfg_.linesPerEntry);
    }
}

FDIP_HOT_PATH void
DjoltPrefetcher::prefetchFrom(Table &table, std::uint64_t sig)
{
    const Entry &e = table[indexOf(sig)];
    if (!e.valid || e.tag != tagOf(sig))
        return;
    for (unsigned i = 0; i < e.numLines; ++i)
        enqueuePrefetch(e.lines[i]);
}

FDIP_HOT_PATH void
DjoltPrefetcher::onBranch(Addr pc, InstClass kind, Addr target,
                          bool taken) FDIP_HOT_NOEXCEPT
{
    (void)target;
    if (!taken || !isCall(kind))
        return;

    // Update the return-address FIFO and record the signature stream.
    retFifo_[fifoPos_] = pc + kInstBytes;
    fifoPos_ = (fifoPos_ + 1) % retFifo_.size();

    const std::uint64_t sig = signature();
    sigHistory_[sigPos_] = sig;
    sigPos_ = (sigPos_ + 1) % sigHistory_.size();

    prefetchFrom(longTable_, sig);
    prefetchFrom(shortTable_, sig);
}

FDIP_HOT_PATH void
DjoltPrefetcher::onDemandLookup(Addr line_addr, bool hit,
                                Cycle now) FDIP_HOT_NOEXCEPT
{
    (void)now;
    if (hit)
        return;
    // Train against the signatures that were live short/long call
    // distances ago, so recurrence prefetches with that much lead.
    const auto ago = [this](unsigned d) {
        return sigHistory_[(sigPos_ + sigHistory_.size() - d) %
                           sigHistory_.size()];
    };
    train(shortTable_, ago(cfg_.shortDistance), line_addr);
    train(longTable_, ago(cfg_.longDistance), line_addr);

    // A miss is also a trigger: fetch the rest of the miss footprint
    // recorded under the current (most recent) signature.
    prefetchFrom(shortTable_, ago(1));

    // D-JOLT's frontal next-line component for sequential misses.
    enqueuePrefetch(line_addr + kCacheLineBytes);
    enqueuePrefetch(line_addr + 2 * kCacheLineBytes);
}

std::uint64_t
DjoltPrefetcher::storageBits() const
{
    // Per entry: valid + 12b tag + lines (34b each).
    const std::uint64_t entry_bits = 1 + 12 + 34ull * cfg_.linesPerEntry;
    return 2 * (std::uint64_t{1} << cfg_.logTableEntries) * entry_bits +
           cfg_.fifoDepth * 48;
}

} // namespace fdip
