#include "prefetch/fnl_mma.h"

#include "util/bits.h"
#include "util/hotpath.h"

namespace fdip
{

FnlMmaPrefetcher::FnlMmaPrefetcher(const FnlMmaConfig &cfg)
    : cfg_(cfg),
      worth_(std::size_t{1} << cfg.logFnlEntries, SatCounter(2, 2)),
      mma_(std::size_t{1} << cfg.logMmaEntries),
      missHistory_(cfg.mmaDistance, kNoAddr)
{
}

FDIP_HOT_PATH std::uint32_t
FnlMmaPrefetcher::fnlIndex(Addr line) const
{
    const std::uint64_t l = line / kCacheLineBytes;
    return static_cast<std::uint32_t>((l ^ (l >> cfg_.logFnlEntries)) &
                                      mask(cfg_.logFnlEntries));
}

FDIP_HOT_PATH std::uint32_t
FnlMmaPrefetcher::mmaIndex(Addr line) const
{
    const std::uint64_t l = line / kCacheLineBytes;
    return static_cast<std::uint32_t>(
        mix64(l) & mask(cfg_.logMmaEntries));
}

FDIP_HOT_PATH std::uint32_t
FnlMmaPrefetcher::mmaTag(Addr line) const
{
    const std::uint64_t l = line / kCacheLineBytes;
    return static_cast<std::uint32_t>((mix64(l) >> 32) & mask(12));
}

FDIP_HOT_PATH void
FnlMmaPrefetcher::onDemandLookup(Addr line_addr, bool hit,
                                 Cycle now) FDIP_HOT_NOEXCEPT
{
    (void)now;

    // ---- FNL training: was this access the sequential successor of
    // the previous one?
    if (lastLine_ != kNoAddr && line_addr != lastLine_) {
        if (line_addr == lastLine_ + kCacheLineBytes)
            worth_[fnlIndex(lastLine_)].increment();
        else
            worth_[fnlIndex(lastLine_)].decrement();
    }
    const bool new_line = line_addr != lastLine_;
    lastLine_ = line_addr;

    // ---- FNL prefetch: chain through confident next-line bits.
    if (new_line) {
        Addr l = line_addr;
        for (unsigned d = 0; d < cfg_.fnlMaxDegree; ++d) {
            if (!worth_[fnlIndex(l)].taken())
                break;
            l += kCacheLineBytes;
            enqueuePrefetch(l);
        }
    }

    if (!hit) {
        // ---- MMA training: the miss mmaDistance ago leads here.
        const Addr old_miss = missHistory_[missPos_];
        if (old_miss != kNoAddr) {
            MmaEntry &e = mma_[mmaIndex(old_miss)];
            e.tag = mmaTag(old_miss);
            e.targetLine = line_addr;
        }
        missHistory_[missPos_] = line_addr;
        missPos_ = (missPos_ + 1) % missHistory_.size();

        // ---- MMA prefetch: jump ahead from this miss, chaining a few
        // hops through the miss-ahead table for additional lead.
        Addr l = line_addr;
        for (unsigned hop = 0; hop < 3; ++hop) {
            const MmaEntry &e = mma_[mmaIndex(l)];
            if (e.targetLine == kNoAddr || e.tag != mmaTag(l))
                break;
            enqueuePrefetch(e.targetLine);
            l = e.targetLine;
        }
    }
}

std::uint64_t
FnlMmaPrefetcher::storageBits() const
{
    // FNL: 2-bit counters. MMA: 12b tag + 34b line address per entry.
    return (std::uint64_t{1} << cfg_.logFnlEntries) * 2 +
           (std::uint64_t{1} << cfg_.logMmaEntries) * (12 + 34);
}

} // namespace fdip
