/**
 * @file
 * The instruction-prefetcher interface, modeled on the IPC-1 framework:
 * prefetchers observe the L1I demand stream (and, for some designs,
 * the committed branch stream) and emit candidate line addresses that
 * the fetch pipeline turns into prefetch fills.
 */

#ifndef FDIP_PREFETCH_PREFETCHER_H_
#define FDIP_PREFETCH_PREFETCHER_H_

#include <array>
#include <cstdint>
#include <string>

#include "obs/stat_registry.h"
#include "trace/inst.h"
#include "util/hotpath.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/**
 * Base class for instruction prefetchers.
 *
 * Concrete prefetchers enqueue line addresses via enqueuePrefetch();
 * the fetch pipeline drains the queue, probes the L1I tag array
 * (counted — the paper's Fig. 9 tag-access analysis depends on this),
 * and issues fills for misses.
 */
class InstPrefetcher
{
  public:
    virtual ~InstPrefetcher() = default;

    /** Display name. */
    virtual const char *name() const = 0;

    /** Modeled metadata storage in bits. */
    virtual std::uint64_t storageBits() const = 0;

    /**
     * Called once by the core after construction. Prefetchers that
     * interact with frontend structures (e.g. BTB prefetching, which
     * pre-decodes filled lines and installs branches) grab what they
     * need here.
     */
    virtual void
    bind(class Bpu &bpu, const class ProgramImage &image)
    {
        (void)bpu;
        (void)image;
    }

    /**
     * A demand L1I lookup for @p line_addr (64B-aligned) was performed.
     * @p hit tells the outcome. Called in fetch order.
     */
    FDIP_HOT_PATH virtual void
    onDemandLookup(Addr line_addr, bool hit, Cycle now) FDIP_HOT_NOEXCEPT
    {
        (void)line_addr;
        (void)hit;
        (void)now;
    }

    /** A fill for @p line_addr completed (@p was_prefetch tells how it
     *  was initiated). */
    FDIP_HOT_PATH virtual void
    onFillComplete(Addr line_addr, bool was_prefetch,
                   Cycle now) FDIP_HOT_NOEXCEPT
    {
        (void)line_addr;
        (void)was_prefetch;
        (void)now;
    }

    /**
     * A correct-path branch resolved. Used by call/return-correlated
     * prefetchers (D-JOLT) and the discontinuity predictor.
     */
    FDIP_HOT_PATH virtual void
    onBranch(Addr pc, InstClass kind, Addr target,
             bool taken) FDIP_HOT_NOEXCEPT
    {
        (void)pc;
        (void)kind;
        (void)target;
        (void)taken;
    }

    /**
     * Registers this prefetcher's stats under @p prefix (the core uses
     * "pf.<name>"). The base registers the universal stats; designs
     * with extra counters override, call the base, and add theirs.
     */
    virtual void
    registerStats(StatRegistry &reg, const std::string &prefix) const
    {
        reg.addCounter(prefix + ".storage_bits",
                       [this] { return storageBits(); },
                       "modeled metadata storage");
        reg.addCounter(prefix + ".pending",
                       [this] {
                           return std::uint64_t{pendingPrefetches()};
                       },
                       "candidates queued, not yet drained");
    }

    /** Pops the next prefetch candidate; kNoAddr when empty. */
    FDIP_HOT_PATH Addr
    popPrefetch() noexcept
    {
        if (count_ == 0)
            return kNoAddr;
        const Addr a = queue_[head_];
        head_ = (head_ + 1) % kMaxQueue;
        --count_;
        return a;
    }

    /** Pending prefetch candidates. */
    [[nodiscard]] std::size_t pendingPrefetches() const noexcept
    {
        return count_;
    }

  protected:
    /** Enqueues a candidate prefetch line (deduplicated FIFO, bounded).
     *  The queue is a fixed in-place ring — models a hardware queue and
     *  keeps the per-tick path allocation-free. */
    FDIP_HOT_PATH void
    enqueuePrefetch(Addr line_addr) noexcept
    {
        if (count_ >= kMaxQueue)
            return;
        for (std::size_t i = 0; i < count_; ++i)
            if (queue_[(head_ + i) % kMaxQueue] == line_addr)
                return;
        queue_[(head_ + count_) % kMaxQueue] = line_addr;
        ++count_;
    }

  private:
    static constexpr std::size_t kMaxQueue = 64;
    FDIP_STATE_MICRO std::array<Addr, kMaxQueue> queue_{};
    FDIP_STATE_MICRO std::size_t head_ = 0;
    FDIP_STATE_MICRO std::size_t count_ = 0;
};

/**
 * The trivial "no prefetching" prefetcher.
 */
class NullPrefetcher final : public InstPrefetcher
{
  public:
    const char *name() const override { return "none"; }
    std::uint64_t storageBits() const override { return 0; }
};

} // namespace fdip

#endif // FDIP_PREFETCH_PREFETCHER_H_
