/**
 * @file
 * The instruction-prefetcher interface, modeled on the IPC-1 framework:
 * prefetchers observe the L1I demand stream (and, for some designs,
 * the committed branch stream) and emit candidate line addresses that
 * the fetch pipeline turns into prefetch fills.
 */

#ifndef FDIP_PREFETCH_PREFETCHER_H_
#define FDIP_PREFETCH_PREFETCHER_H_

#include <cstdint>
#include <deque>
#include <string>

#include "obs/stat_registry.h"
#include "trace/inst.h"
#include "util/types.h"

namespace fdip
{

/**
 * Base class for instruction prefetchers.
 *
 * Concrete prefetchers enqueue line addresses via enqueuePrefetch();
 * the fetch pipeline drains the queue, probes the L1I tag array
 * (counted — the paper's Fig. 9 tag-access analysis depends on this),
 * and issues fills for misses.
 */
class InstPrefetcher
{
  public:
    virtual ~InstPrefetcher() = default;

    /** Display name. */
    virtual const char *name() const = 0;

    /** Modeled metadata storage in bits. */
    virtual std::uint64_t storageBits() const = 0;

    /**
     * Called once by the core after construction. Prefetchers that
     * interact with frontend structures (e.g. BTB prefetching, which
     * pre-decodes filled lines and installs branches) grab what they
     * need here.
     */
    virtual void
    bind(class Bpu &bpu, const class ProgramImage &image)
    {
        (void)bpu;
        (void)image;
    }

    /**
     * A demand L1I lookup for @p line_addr (64B-aligned) was performed.
     * @p hit tells the outcome. Called in fetch order.
     */
    virtual void
    onDemandLookup(Addr line_addr, bool hit, Cycle now)
    {
        (void)line_addr;
        (void)hit;
        (void)now;
    }

    /** A fill for @p line_addr completed (@p was_prefetch tells how it
     *  was initiated). */
    virtual void
    onFillComplete(Addr line_addr, bool was_prefetch, Cycle now)
    {
        (void)line_addr;
        (void)was_prefetch;
        (void)now;
    }

    /**
     * A correct-path branch resolved. Used by call/return-correlated
     * prefetchers (D-JOLT) and the discontinuity predictor.
     */
    virtual void
    onBranch(Addr pc, InstClass kind, Addr target, bool taken)
    {
        (void)pc;
        (void)kind;
        (void)target;
        (void)taken;
    }

    /**
     * Registers this prefetcher's stats under @p prefix (the core uses
     * "pf.<name>"). The base registers the universal stats; designs
     * with extra counters override, call the base, and add theirs.
     */
    virtual void
    registerStats(StatRegistry &reg, const std::string &prefix) const
    {
        reg.addCounter(prefix + ".storage_bits",
                       [this] { return storageBits(); },
                       "modeled metadata storage");
        reg.addCounter(prefix + ".pending",
                       [this] {
                           return std::uint64_t{pendingPrefetches()};
                       },
                       "candidates queued, not yet drained");
    }

    /** Pops the next prefetch candidate; kNoAddr when empty. */
    Addr
    popPrefetch()
    {
        if (queue_.empty())
            return kNoAddr;
        const Addr a = queue_.front();
        queue_.pop_front();
        return a;
    }

    /** Pending prefetch candidates. */
    std::size_t pendingPrefetches() const { return queue_.size(); }

  protected:
    /** Enqueues a candidate prefetch line (deduplicated FIFO, bounded). */
    void
    enqueuePrefetch(Addr line_addr)
    {
        if (queue_.size() >= kMaxQueue)
            return;
        for (Addr a : queue_)
            if (a == line_addr)
                return;
        queue_.push_back(line_addr);
    }

  private:
    static constexpr std::size_t kMaxQueue = 64;
    std::deque<Addr> queue_;
};

/**
 * The trivial "no prefetching" prefetcher.
 */
class NullPrefetcher : public InstPrefetcher
{
  public:
    const char *name() const override { return "none"; }
    std::uint64_t storageBits() const override { return 0; }
};

} // namespace fdip

#endif // FDIP_PREFETCH_PREFETCHER_H_
